"""Deterministic discrete-event simulation kernel.

Every experiment in the reproduction runs on this kernel: it provides a
virtual clock, an event queue with stable FIFO tie-breaking, generator-based
processes (in the style of SimPy), composable wait conditions, and seeded
random-number streams so that any run is exactly repeatable from its seed.

The kernel is deliberately self-contained: the simulated network
(:mod:`repro.net`), the leasing subsystem (:mod:`repro.leasing`) and the
Tiamat instances themselves (:mod:`repro.core`) are all expressed as event
callbacks and processes over this module.

Quick taste::

    from repro.sim import Simulator

    sim = Simulator(seed=7)

    def greeter(sim):
        yield sim.timeout(5.0)
        print("hello at", sim.now)

    sim.spawn(greeter(sim))
    sim.run()
"""

from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.kernel import Simulator, Timer
from repro.sim.process import Process
from repro.sim.resources import Gate, SimResource, SimStore
from repro.sim.rng import RngStream

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Gate",
    "Process",
    "SimResource",
    "SimStore",
    "RngStream",
    "Simulator",
    "Timeout",
    "Timer",
]
