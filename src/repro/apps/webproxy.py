"""The web client / proxy server application (section 3.2).

"Clients place their identified requests into the space as tuples.  The
client then performs a blocking operation attempting to retrieve a response
tuple with the same identifying information.  Proxy servers perform
blocking operations awaiting requests.  When a request is placed into the
space it is removed and given to a proxy server, which obtains the relevant
pages, wraps them up in a tuple along with the original identifying
information.  The proxy server then places this tuple back into the space
allowing it to be retrieved by the client."

The benefits the T2 bench measures are quoted directly from the paper:
proxies "can be dynamically added without the clients' knowledge" (load
balancing and failure replacement, neither visible to clients), and "the
client can still make requests even in the absence of any servers ...
once a server becomes visible it will see the tuple (assuming the lease
has not expired) and perform the necessary operation".

Tuple vocabulary::

    ("web_request",  <req_id:int>, <url:str>)
    ("web_response", <req_id:int>, <body:str>)
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.core.instance import TiamatInstance
from repro.errors import LeaseError
from repro.leasing import LeaseTerms, SimpleLeaseRequester
from repro.sim.kernel import Simulator
from repro.tuples import Formal, Pattern, Tuple

REQUEST_TAG = "web_request"
RESPONSE_TAG = "web_response"

_req_ids = itertools.count(1)


class OriginFabric:
    """The synthetic web: URL -> page body, with a fetch delay.

    Stands in for the real HTTP origin servers the paper's third-party
    proxy talked to; the coordination claims under test do not depend on
    real HTTP semantics, only on the fetch taking time.
    """

    def __init__(self, fetch_time: float = 0.05) -> None:
        self.fetch_time = fetch_time
        self.fetches = 0

    def page_for(self, url: str) -> str:
        """Deterministic synthetic page body for a URL."""
        self.fetches += 1
        return f"<html>content of {url} ({len(url)} chars)</html>"


class WebClient:
    """A client issuing leased request tuples and awaiting responses."""

    def __init__(self, sim: Simulator, instance: TiamatInstance,
                 request_lease: float = 60.0, response_wait: float = 60.0) -> None:
        self.sim = sim
        self.instance = instance
        self.request_lease = request_lease
        self.response_wait = response_wait
        self.issued = 0
        self.satisfied = 0
        self.failed = 0
        self.latencies: list[float] = []

    def fetch(self, url: str):
        """Issue one request; a generator usable as a simulation process.

        Yields until the response tuple arrives (or the wait lease
        expires).  Returns the body string or None.
        """
        req_id = next(_req_ids)
        started = self.sim.now
        self.issued += 1
        try:
            self.instance.out(
                Tuple(REQUEST_TAG, req_id, url),
                requester=SimpleLeaseRequester(LeaseTerms(duration=self.request_lease)))
        except LeaseError:
            self.failed += 1
            return None
        op = self.instance.in_(
            Pattern(RESPONSE_TAG, req_id, Formal(str)),
            requester=SimpleLeaseRequester(
                LeaseTerms(duration=self.response_wait, max_remotes=16)))
        response = yield op.event
        if response is None:
            self.failed += 1
            return None
        self.satisfied += 1
        self.latencies.append(self.sim.now - started)
        return response[2]

    def browse(self, urls: list[str], think_time: float = 0.5):
        """Fetch a sequence of URLs with think time between them."""
        for url in urls:
            yield from self.fetch(url)
            yield self.sim.timeout(think_time)


class ProxyServer:
    """A proxy: takes request tuples, fetches pages, answers with responses.

    Completely anonymous to clients — it never learns who asked, and
    clients never learn who answered (identity decoupling).
    """

    def __init__(self, sim: Simulator, instance: TiamatInstance,
                 fabric: OriginFabric, wait_lease: float = 30.0) -> None:
        self.sim = sim
        self.instance = instance
        self.fabric = fabric
        self.wait_lease = wait_lease
        self.handled = 0
        self.running = False
        self._process = None

    def start(self) -> None:
        """Begin the serve loop."""
        self.running = True
        self._process = self.sim.spawn(self._serve_loop())

    def stop(self) -> None:
        """Stop taking new requests (in-flight work finishes)."""
        self.running = False

    def _serve_loop(self):
        while self.running:
            try:
                op = self.instance.in_(
                    Pattern(REQUEST_TAG, Formal(int), Formal(str)),
                    requester=SimpleLeaseRequester(
                        LeaseTerms(duration=self.wait_lease, max_remotes=16)))
            except LeaseError:
                yield self.sim.timeout(1.0)
                continue
            request = yield op.event
            if request is None:
                continue  # lease expired with no request; go around again
            req_id, url = request[1], request[2]
            yield self.sim.timeout(self.fabric.fetch_time)
            body = self.fabric.page_for(url)
            try:
                self.instance.out(Tuple(RESPONSE_TAG, req_id, body))
            except LeaseError:
                pass  # response dropped; the client's wait lease will expire
            self.handled += 1


class WebScenario:
    """Builder for T2: clients and proxies over a shared network."""

    def __init__(self, sim: Simulator, network, fabric: Optional[OriginFabric] = None,
                 config=None) -> None:
        from repro.core import TiamatConfig

        self.sim = sim
        self.network = network
        self.fabric = fabric if fabric is not None else OriginFabric()
        # The disconnected-client story (3.2) needs operations to reach
        # instances that become visible mid-operation, i.e. the model's
        # continuous propagation; pass an explicit config to ablate.
        self.config = (config if config is not None
                       else TiamatConfig(propagate_mode="continuous"))
        self.clients: dict[str, WebClient] = {}
        self.proxies: dict[str, ProxyServer] = {}
        self.instances: dict[str, TiamatInstance] = {}

    def add_client(self, name: str, **kwargs) -> WebClient:
        """Create a client instance + app."""
        instance = TiamatInstance(self.sim, self.network, name, config=self.config)
        client = WebClient(self.sim, instance, **kwargs)
        self.instances[name] = instance
        self.clients[name] = client
        return client

    def add_proxy(self, name: str, start: bool = True, **kwargs) -> ProxyServer:
        """Create (and by default start) a proxy instance + app."""
        instance = TiamatInstance(self.sim, self.network, name, config=self.config)
        proxy = ProxyServer(self.sim, instance, self.fabric, **kwargs)
        self.instances[name] = instance
        self.proxies[name] = proxy
        if start:
            proxy.start()
        return proxy

    def connect_all(self) -> None:
        """Make every participant mutually visible."""
        self.network.visibility.connect_clique(list(self.instances))

    def total_satisfied(self) -> int:
        """Requests answered across all clients."""
        return sum(c.satisfied for c in self.clients.values())

    def total_failed(self) -> int:
        """Requests that timed out across all clients."""
        return sum(c.failed for c in self.clients.values())
