"""Sample applications (section 3.2) and synthetic workloads.

The paper evaluates Tiamat by porting two third-party applications onto the
tuple space with ~200 lines of glue:

* :mod:`repro.apps.webproxy` — a web client + proxy server pair that
  coordinate anonymously through the space.  Proxies can be added for load
  balancing or to replace failures without the clients noticing, and a
  disconnected client's requests are served once a proxy becomes visible
  (if the request tuple's lease has not expired).
* :mod:`repro.apps.fractal` — a Mandelbrot renderer restructured from a
  load-balancing server into masters and workers that exchange task and
  result tuples; worker count can change mid-render without perturbing the
  master.

:mod:`repro.apps.services` adds a third domain: ad-hoc service discovery
with soft-state (leased) adverts, and :mod:`repro.apps.workloads` provides
the synthetic request/response workload used by the cross-system
comparison benches.
"""

from repro.apps.webproxy import OriginFabric, ProxyServer, WebClient, WebScenario
from repro.apps.fractal import FractalMaster, FractalWorker, mandelbrot_tile
from repro.apps.services import ServiceClient, ServiceProvider, advert_pattern
from repro.apps.workloads import RequestResponseWorkload, WorkloadStats

__all__ = [
    "FractalMaster",
    "FractalWorker",
    "OriginFabric",
    "ProxyServer",
    "RequestResponseWorkload",
    "ServiceClient",
    "ServiceProvider",
    "WebClient",
    "WebScenario",
    "WorkloadStats",
    "advert_pattern",
    "mandelbrot_tile",
]
