"""Sample applications (section 3.2) and synthetic workloads.

The paper evaluates Tiamat by porting two third-party applications onto the
tuple space with ~200 lines of glue:

* :mod:`repro.apps.webproxy` — a web client + proxy server pair that
  coordinate anonymously through the space.  Proxies can be added for load
  balancing or to replace failures without the clients noticing, and a
  disconnected client's requests are served once a proxy becomes visible
  (if the request tuple's lease has not expired).
* :mod:`repro.apps.fractal` — a Mandelbrot renderer restructured from a
  load-balancing server into masters and workers that exchange task and
  result tuples; worker count can change mid-render without perturbing the
  master.

:mod:`repro.apps.services` adds a third domain: ad-hoc service discovery
with soft-state (leased) adverts, and :mod:`repro.apps.workloads` provides
the synthetic request/response workload used by the cross-system
comparison benches.

:mod:`repro.apps.agents` is the generative-coordination showcase
(ROADMAP item 3): a multi-agent blackboard where N agents coordinate
purely through the space — durable task tuples claimed via leased
``inp``, lease-expiry re-offers, broadcast questions, rd-quorum
consensus, and DAG task decomposition — checkable by the
``claim_exclusivity`` / ``quorum_safety`` oracles and benchmarked as T12.
"""

from repro.apps.webproxy import OriginFabric, ProxyServer, WebClient, WebScenario
from repro.apps.fractal import FractalMaster, FractalWorker, mandelbrot_tile
from repro.apps.services import ServiceClient, ServiceProvider, advert_pattern
from repro.apps.workloads import RequestResponseWorkload, WorkloadStats
from repro.apps.agents import (
    AgentSwarm,
    SwarmConfig,
    SwarmStats,
    TaskSpec,
    decompose,
    jain_fairness,
    run_handles_session,
    topological_order,
)

__all__ = [
    "AgentSwarm",
    "FractalMaster",
    "FractalWorker",
    "OriginFabric",
    "ProxyServer",
    "RequestResponseWorkload",
    "ServiceClient",
    "ServiceProvider",
    "SwarmConfig",
    "SwarmStats",
    "TaskSpec",
    "WebClient",
    "WebScenario",
    "WorkloadStats",
    "advert_pattern",
    "decompose",
    "jain_fairness",
    "mandelbrot_tile",
    "run_handles_session",
    "topological_order",
]
