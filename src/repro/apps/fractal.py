"""The fractal generator application (section 3.2).

"The load balancing server was removed and the data producers communicated
with the entities performing the calculations through the space ...
masters placing identified tuples defining the calculation to be performed,
and the workers attaching the same identity to the result.  Once again, the
number of entities performing calculations could be increased and decreased
without perturbing the clients."

The computation is a real Mandelbrot escape-time kernel so that tile costs
are genuinely unequal (tiles over the set's interior hit ``max_iter``
everywhere and cost the most) — the load imbalance that made the original
application need a balancing server in the first place.  Virtual compute
time is proportional to the actual iteration work performed.

Tuple vocabulary::

    ("frac_task",   <job:str>, <tile:int>, (<x0> <y0> <x1> <y1> <nx> <ny> <max_iter>))
    ("frac_result", <job:str>, <tile:int>, <total_iterations:int>)
"""

from __future__ import annotations

from typing import Optional

from repro.core.instance import TiamatInstance
from repro.errors import LeaseError
from repro.leasing import LeaseTerms, SimpleLeaseRequester
from repro.sim.kernel import Simulator
from repro.tuples import Formal, Pattern, Tuple

TASK_TAG = "frac_task"
RESULT_TAG = "frac_result"


def mandelbrot_tile(x0: float, y0: float, x1: float, y1: float,
                    nx: int, ny: int, max_iter: int) -> int:
    """Render one tile; returns the total escape-time iteration count.

    The iteration total is both the "image" checksum the master aggregates
    and an exact measure of how much work the tile cost.
    """
    total = 0
    for j in range(ny):
        ci = y0 + (y1 - y0) * (j + 0.5) / ny
        for i in range(nx):
            cr = x0 + (x1 - x0) * (i + 0.5) / nx
            zr = zi = 0.0
            count = 0
            while count < max_iter and zr * zr + zi * zi <= 4.0:
                zr, zi = zr * zr - zi * zi + cr, 2.0 * zr * zi + ci
                count += 1
            total += count
    return total


class FractalMaster:
    """Splits a region into tile tasks and collects the results."""

    def __init__(self, sim: Simulator, instance: TiamatInstance, job: str,
                 region: tuple = (-2.0, -1.25, 0.5, 1.25),
                 tiles: int = 16, resolution: int = 24, max_iter: int = 60,
                 task_lease: float = 300.0, collect_lease: float = 300.0) -> None:
        self.sim = sim
        self.instance = instance
        self.job = job
        self.region = region
        self.tiles = tiles
        self.resolution = resolution
        self.max_iter = max_iter
        self.task_lease = task_lease
        self.collect_lease = collect_lease
        self.results: dict[int, int] = {}
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None

    @property
    def complete(self) -> bool:
        """True once every tile's result has been collected."""
        return len(self.results) == self.tiles

    @property
    def checksum(self) -> int:
        """Aggregate of all tile iteration totals (the rendered 'image')."""
        return sum(self.results.values())

    def run(self):
        """The master process: post all tasks, then gather all results."""
        self.started_at = self.sim.now
        x0, y0, x1, y1 = self.region
        for t in range(self.tiles):
            ty0 = y0 + (y1 - y0) * t / self.tiles
            ty1 = y0 + (y1 - y0) * (t + 1) / self.tiles
            params = Tuple(x0, ty0, x1, ty1, self.resolution,
                           max(1, self.resolution // self.tiles), self.max_iter)
            self.instance.out(
                Tuple(TASK_TAG, self.job, t, params),
                requester=SimpleLeaseRequester(LeaseTerms(duration=self.task_lease)))
        while not self.complete:
            op = self.instance.in_(
                Pattern(RESULT_TAG, self.job, Formal(int), Formal(int)),
                requester=SimpleLeaseRequester(
                    LeaseTerms(duration=self.collect_lease, max_remotes=32)))
            result = yield op.event
            if result is None:
                break  # collection lease expired: give up on missing tiles
            self.results[result[2]] = result[3]
        if self.complete:
            self.finished_at = self.sim.now
        return self.checksum if self.complete else None


class FractalWorker:
    """Takes task tuples, computes tiles, and posts result tuples."""

    #: Default virtual seconds of compute per escape-time iteration.
    TIME_PER_ITERATION = 2e-6

    def __init__(self, sim: Simulator, instance: TiamatInstance,
                 wait_lease: float = 30.0,
                 time_per_iteration: Optional[float] = None) -> None:
        self.sim = sim
        self.instance = instance
        self.wait_lease = wait_lease
        self.time_per_iteration = (time_per_iteration if time_per_iteration is not None
                                   else self.TIME_PER_ITERATION)
        self.tiles_done = 0
        self.iterations_done = 0
        self.running = False
        self._process = None

    def start(self) -> None:
        """Begin the work loop."""
        self.running = True
        self._process = self.sim.spawn(self._work_loop())

    def stop(self) -> None:
        """Stop taking new tasks."""
        self.running = False

    def _work_loop(self):
        while self.running:
            try:
                op = self.instance.in_(
                    Pattern(TASK_TAG, Formal(str), Formal(int), Formal(Tuple)),
                    requester=SimpleLeaseRequester(
                        LeaseTerms(duration=self.wait_lease, max_remotes=16)))
            except LeaseError:
                yield self.sim.timeout(1.0)
                continue
            task = yield op.event
            if task is None:
                continue
            job, tile, params = task[1], task[2], task[3]
            x0, y0, x1, y1, nx, ny, max_iter = params.fields
            iterations = mandelbrot_tile(x0, y0, x1, y1, nx, ny, max_iter)
            # Virtual compute time proportional to the real work done.
            yield self.sim.timeout(iterations * self.time_per_iteration)
            self.tiles_done += 1
            self.iterations_done += iterations
            try:
                self.instance.out(Tuple(RESULT_TAG, job, tile, iterations))
            except LeaseError:
                pass  # result lost; the master's collection lease bounds this
