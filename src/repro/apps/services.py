"""Leased service discovery and invocation over the tuple space.

The third application domain (after the paper's web proxy and fractal
farm): ad-hoc service provision, the use case the generative-communication
literature around Tiamat repeatedly motivates.  It showcases the leasing
model doing what registries use heartbeats for:

* a provider advertises with a **soft-state tuple** — the advert carries a
  lease and is refreshed while the provider is alive; when the provider
  dies (battery, departure) the advert silently expires and no stale
  registration ever lingers (compare section 2.5's garbage argument);
* clients *discover* by reading advert tuples through the logical space —
  any provider of the right service type matches, none is named
  (identity decoupling);
* invocation is the request/response pattern over tuples, so providers
  can be replaced between a client's calls without the client noticing.

Tuple vocabulary::

    ("svc_advert",   <service type:str>, <provider:str>)
    ("svc_request",  <service type:str>, <call id:int>, <argument:str>)
    ("svc_response", <call id:int>, <result:str>)
"""

from __future__ import annotations

import itertools
from typing import Callable

from repro.core.instance import TiamatInstance
from repro.errors import LeaseError
from repro.leasing import LeaseTerms, SimpleLeaseRequester
from repro.sim.kernel import Simulator
from repro.tuples import Formal, Pattern, Tuple

ADVERT_TAG = "svc_advert"
REQUEST_TAG = "svc_request"
RESPONSE_TAG = "svc_response"

_call_ids = itertools.count(1)


def advert_pattern(service_type: str) -> Pattern:
    """The discovery pattern for one service type."""
    return Pattern(ADVERT_TAG, service_type, Formal(str))


class ServiceProvider:
    """Advertises a service as soft state and serves its requests.

    ``handler`` maps the request argument string to a result string; the
    virtual service time models the work.
    """

    def __init__(self, sim: Simulator, instance: TiamatInstance,
                 service_type: str, handler: Callable[[str], str],
                 advert_lease: float = 10.0, refresh_every: float = 4.0,
                 service_time: float = 0.1, wait_lease: float = 15.0) -> None:
        self.sim = sim
        self.instance = instance
        self.service_type = service_type
        self.handler = handler
        self.advert_lease = advert_lease
        self.refresh_every = refresh_every
        self.service_time = service_time
        self.wait_lease = wait_lease
        self.served = 0
        self.running = False

    def start(self) -> None:
        """Begin advertising and serving."""
        self.running = True
        self.sim.spawn(self._advertise_loop())
        self.sim.spawn(self._serve_loop())

    def stop(self) -> None:
        """Stop refreshing the advert and taking requests.

        The current advert is left to expire on its own — exactly how a
        crashed provider disappears.
        """
        self.running = False

    # ------------------------------------------------------------------
    def _advertise_loop(self):
        while self.running:
            try:
                self.instance.out(
                    Tuple(ADVERT_TAG, self.service_type, self.instance.name),
                    requester=SimpleLeaseRequester(
                        LeaseTerms(duration=self.advert_lease)))
            except LeaseError:
                pass  # too pressured to advertise this round
            yield self.sim.timeout(self.refresh_every)

    def _serve_loop(self):
        pattern = Pattern(REQUEST_TAG, self.service_type, Formal(int),
                          Formal(str))
        while self.running:
            try:
                op = self.instance.in_(
                    pattern,
                    requester=SimpleLeaseRequester(
                        LeaseTerms(duration=self.wait_lease, max_remotes=16)))
            except LeaseError:
                yield self.sim.timeout(1.0)
                continue
            request = yield op.event
            if request is None:
                continue
            call_id, argument = request[2], request[3]
            yield self.sim.timeout(self.service_time)
            try:
                self.instance.out(
                    Tuple(RESPONSE_TAG, call_id, self.handler(argument)))
            except LeaseError:
                continue
            self.served += 1


class ServiceClient:
    """Discovers services through the logical space and invokes them."""

    def __init__(self, sim: Simulator, instance: TiamatInstance,
                 discover_lease: float = 2.0, call_timeout: float = 15.0) -> None:
        self.sim = sim
        self.instance = instance
        self.discover_lease = discover_lease
        self.call_timeout = call_timeout
        self.calls = 0
        self.completed = 0

    def discover(self, service_type: str):
        """Find *some* provider of ``service_type``; a simulation process.

        Returns the provider's instance name, or None if no live advert is
        reachable within the discovery lease.
        """
        op = self.instance.rdp(
            advert_pattern(service_type),
            requester=SimpleLeaseRequester(
                LeaseTerms(duration=self.discover_lease, max_remotes=16)))
        advert = yield op.event
        return advert[2] if advert is not None else None

    def call(self, service_type: str, argument: str):
        """Invoke the service anonymously; a simulation process.

        The request goes into the space for *any* provider of the type;
        the response is matched back by call id.  Returns the result
        string, or None if no provider answered within the timeout.
        """
        call_id = next(_call_ids)
        self.calls += 1
        try:
            self.instance.out(
                Tuple(REQUEST_TAG, service_type, call_id, argument),
                requester=SimpleLeaseRequester(
                    LeaseTerms(duration=self.call_timeout)))
        except LeaseError:
            return None
        op = self.instance.in_(
            Pattern(RESPONSE_TAG, call_id, Formal(str)),
            requester=SimpleLeaseRequester(
                LeaseTerms(duration=self.call_timeout, max_remotes=16)))
        response = yield op.event
        if response is None:
            return None
        self.completed += 1
        return response[2]

    def available_types(self, candidates: list[str]):
        """Which of ``candidates`` have a live, reachable advert right now.

        A simulation process; returns the sorted list of available types.
        """
        found = []
        for service_type in candidates:
            provider = yield from self.discover(service_type)
            if provider is not None:
                found.append(service_type)
        return sorted(found)
