"""Synthetic workloads for the cross-system comparison benches.

The comparison (T5) drives every system — Tiamat and the five baselines —
with the same request/response pattern over the common
:class:`~repro.baselines.base.SpaceNode` interface: each node periodically
deposits a tagged item addressed to a random other node's tag and tries to
take items addressed to itself.  Success rate, messages per operation, and
per-node storage fall out of the run.
"""

from __future__ import annotations

from typing import Callable

from repro.baselines.base import SpaceNode
from repro.sim.kernel import Simulator
from repro.sim.rng import RngStream
from repro.tuples import Formal, Pattern, Tuple

ITEM_TAG = "wl_item"


class WorkloadStats:
    """Counters a workload run produces."""

    def __init__(self) -> None:
        self.produced = 0
        self.consume_attempts = 0
        self.consumed = 0
        self.timeouts = 0
        self.latency_sum = 0.0

    @property
    def success_rate(self) -> float:
        """Fraction of consume attempts that returned a tuple."""
        if self.consume_attempts == 0:
            return 0.0
        return self.consumed / self.consume_attempts

    @property
    def mean_latency(self) -> float:
        """Mean virtual seconds from consume issue to satisfaction."""
        if self.consumed == 0:
            return 0.0
        return self.latency_sum / self.consumed


class RequestResponseWorkload:
    """Each node produces items for random peers and consumes its own.

    Parameters
    ----------
    nodes:
        Name -> SpaceNode for every participant.
    rng:
        Stream for peer selection and jitter.
    period:
        Mean virtual seconds between one node's successive produce/consume
        rounds.
    op_timeout:
        Bound on each blocking consume.
    """

    def __init__(self, sim: Simulator, nodes: dict[str, SpaceNode],
                 rng: RngStream, period: float = 2.0,
                 op_timeout: float = 5.0) -> None:
        self.sim = sim
        self.nodes = nodes
        self.rng = rng
        self.period = period
        self.op_timeout = op_timeout
        self.stats = WorkloadStats()
        self._seq = 0

    def start(self, duration: float) -> None:
        """Spawn one driver process per node, running for ``duration``."""
        for name in sorted(self.nodes):
            self.sim.spawn(self._drive(name, self.sim.now + duration))

    def _drive(self, name: str, until: float):
        node = self.nodes[name]
        others = [n for n in sorted(self.nodes) if n != name]
        while self.sim.now < until:
            yield self.sim.timeout(self.rng.expovariate(1.0 / self.period))
            if self.sim.now >= until:
                break
            if others:
                target = self.rng.choice(others)
                self._seq += 1
                node.out(Tuple(ITEM_TAG, target, self._seq))
                self.stats.produced += 1
            self.stats.consume_attempts += 1
            issued = self.sim.now
            op = node.in_(Pattern(ITEM_TAG, name, Formal(int)),
                          timeout=self.op_timeout)
            result = yield op.event
            if result is not None:
                self.stats.consumed += 1
                self.stats.latency_sum += self.sim.now - issued
            else:
                self.stats.timeouts += 1


def make_driver(fn: Callable, *args) -> Callable:
    """Tiny helper: wrap a generator function for deferred spawning."""
    def factory(sim: Simulator):
        return sim.spawn(fn(*args))
    return factory
