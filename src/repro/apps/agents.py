"""Multi-agent blackboard workload: swarms coordinating purely generatively.

ROADMAP item 3 ("millions of users, each of them holding a number of
devices") in miniature: N agent nodes coordinate *only* through the tuple
space — no direct messages, no central scheduler.  The shapes are the ones
agent-swarm systems build over tuple spaces (BeeTS; MassGen's broadcast /
vote orchestration), expressed in the six Linda primitives:

**Durable task tuples + bid/claim via leased ``inp``.**
A *board* node owns the task board::

    ("aspec", tid, payload, deps_csv)   durable task spec (never consumed)
    ("atask", tid, payload)             the claimable offer
    ("atok",  tid)                      completion token (exactly-once gate)

An agent claims by destructively taking the offer (``inp`` — the
substrate's network-wide exactly-once consume *is* the mutual exclusion)
and immediately deposits a ``("awip", tid, agent)`` marker on itself under
a ``claim_ttl`` lease.  If the agent crashes or stalls, that lease dies
with it; the board's reaper re-offers any task whose offer, wip marker
*and* completion record have all been missing for a full
``claim_ttl + reoffer_grace`` window — lease expiry automatically
re-offers work abandoned by crashed agents.  Completion is gated by the
token: the finisher must win ``inp ("atok", tid)`` before depositing
``("adone", tid, agent, result)``, so a slow claimant racing a re-offered
copy can never produce a duplicate completion.

**Broadcast questions, inject-then-continue.**
The board broadcasts ``("aq", qid, text)``; every agent that reads it
deposits one ``("ans", qid, agent, value)``.  The board keeps working —
reaping, offering, collecting — and injects answers as they arrive
(non-blocking ``inp`` each cycle) rather than blocking on a quorum.

**Consensus via rd-quorum over vote tuples.**
``("avq", qid, options_csv)`` opens a ballot; agents deposit
``("avote", qid, agent, choice)``.  Any agent tallies with *ground*
non-destructive reads (one ``rdp`` per roster member — an rd-quorum) and,
on seeing a majority, tries to win the decision token
``inp ("adtok", qid)``; only the winner deposits
``("adecision", qid, choice)``.  Two conflicting decisions for one
question are therefore impossible by construction — the
``quorum_safety`` oracle (``repro.check.oracles``) watches the
``agents.decide`` probe to prove it, and the ``split_vote`` mutation
canary proves the oracle is not vacuous.

**Task decomposition through the space.**
:func:`decompose` fans a root task into a layered DAG of subtasks; the
board offers a subtask only when every dependency has completed, so the
dependency order is resolved by completions flowing through the space.

Two engines share this protocol:

* :class:`AgentSwarm` — the simulation engine (generator processes over
  :class:`~repro.core.instance.TiamatInstance`), used by the ``agent_swarm``
  explorer template, the Hypothesis property tests and the T12 benchmark;
  supports crash/revive churn and admission-controlled boards.
* :func:`run_handles_session` — the portable engine over the
  :func:`repro.connect` front door: the same tuple vocabulary driven
  through synchronous :class:`~repro.runtime.api.TiamatNodeHandle` calls,
  on real threads for the ``threads``/``aio`` runtimes.
"""

from __future__ import annotations

import threading
import time as _time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple as Tup

from repro.check import probes
from repro.core.config import TiamatConfig
from repro.core.instance import TiamatInstance
from repro.errors import LeaseError
from repro.leasing import LeaseTerms, SimpleLeaseRequester
from repro.net.network import Network
from repro.net.visibility import VisibilityGraph
from repro.sim.kernel import Simulator
from repro.tuples import Formal, Pattern, Tuple

__all__ = [
    "AgentSwarm",
    "HandleSessionResult",
    "SwarmConfig",
    "SwarmStats",
    "TaskSpec",
    "decompose",
    "jain_fairness",
    "run_handles_session",
    "topological_order",
]

# ---------------------------------------------------------------------------
# Tuple vocabulary
# ---------------------------------------------------------------------------
SPEC_TAG = "aspec"
TASK_TAG = "atask"
WIP_TAG = "awip"
TOKEN_TAG = "atok"
DONE_TAG = "adone"
QUESTION_TAG = "aq"
ANSWER_TAG = "ans"
VOTE_Q_TAG = "avq"
VOTE_TAG = "avote"
DECIDE_TOKEN_TAG = "adtok"
DECISION_TAG = "adecision"

TASK_PATTERN = Pattern(TASK_TAG, Formal(int), Formal(str))
DONE_PATTERN = Pattern(DONE_TAG, Formal(int), Formal(str), Formal(str))
ANSWER_PATTERN = Pattern(ANSWER_TAG, Formal(int), Formal(str), Formal(str))


def _req(duration: float, max_remotes: int = 16) -> SimpleLeaseRequester:
    return SimpleLeaseRequester(LeaseTerms(duration=duration,
                                           max_remotes=max_remotes))


# ---------------------------------------------------------------------------
# Task decomposition
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class TaskSpec:
    """One subtask in a decomposed job: id, payload, dependency ids."""

    tid: int
    payload: str
    deps: Tup[int, ...] = ()


def topological_order(specs: Sequence[TaskSpec]) -> List[int]:
    """A deterministic topological order of ``specs`` (Kahn, tid tiebreak).

    Raises ``ValueError`` on a cycle or a dependency on an unknown task.
    """
    by_tid = {spec.tid: spec for spec in specs}
    remaining: Dict[int, set] = {}
    for spec in specs:
        for dep in spec.deps:
            if dep not in by_tid:
                raise ValueError(f"task {spec.tid} depends on unknown "
                                 f"task {dep}")
        remaining[spec.tid] = set(spec.deps)
    order: List[int] = []
    ready = sorted(tid for tid, deps in remaining.items() if not deps)
    while ready:
        tid = ready.pop(0)
        order.append(tid)
        newly = []
        for other, deps in remaining.items():
            if tid in deps:
                deps.discard(tid)
                if not deps and other not in order:
                    newly.append(other)
        ready = sorted(set(ready) | set(newly))
    if len(order) != len(specs):
        raise ValueError("dependency graph has a cycle")
    return order


def decompose(root_payload: str, *, fanout: int = 3, depth: int = 2,
              base_tid: int = 0, rng: Any = None) -> List[TaskSpec]:
    """Fan a root task into a dependency-ordered DAG of subtasks.

    Layer 0 holds ``fanout`` independent subtasks; each task in layer
    ``l > 0`` depends on one or two tasks of layer ``l-1`` (seeded by
    ``rng`` when given, deterministic otherwise); a final *join* task
    depends on the whole last layer.  The returned list is in a valid
    topological order (verified by construction via
    :func:`topological_order`).
    """
    if fanout < 1 or depth < 1:
        raise ValueError("fanout and depth must be >= 1")
    specs: List[TaskSpec] = []
    tid = base_tid
    layers: List[List[int]] = []
    for layer in range(depth):
        row: List[int] = []
        for i in range(fanout):
            if layer == 0:
                deps: Tup[int, ...] = ()
            else:
                prev = layers[layer - 1]
                if rng is not None:
                    first = rng.choice(prev)
                    deps = (first,)
                    if len(prev) > 1 and rng.random() < 0.5:
                        second = rng.choice(prev)
                        if second != first:
                            deps = (first, second)
                else:
                    deps = (prev[i % len(prev)],)
            specs.append(TaskSpec(tid, f"{root_payload}/{layer}.{i}", deps))
            row.append(tid)
            tid += 1
        layers.append(row)
    specs.append(TaskSpec(tid, f"{root_payload}/join", tuple(layers[-1])))
    order = topological_order(specs)
    by_tid = {spec.tid: spec for spec in specs}
    return [by_tid[t] for t in order]


def jain_fairness(shares: Sequence[float]) -> float:
    """Jain's fairness index over per-worker shares (1.0 = perfectly fair)."""
    values = [float(v) for v in shares]
    if not values or not any(values):
        return 1.0
    square_of_sum = sum(values) ** 2
    sum_of_squares = sum(v * v for v in values)
    return square_of_sum / (len(values) * sum_of_squares)


# ---------------------------------------------------------------------------
# Simulation engine
# ---------------------------------------------------------------------------
@dataclass
class SwarmConfig:
    """Timing knobs of the blackboard protocol (virtual seconds)."""

    claim_ttl: float = 1.2       # wip-marker lease: how long a claim lives
    reoffer_grace: float = 0.75  # extra slack before the reaper re-offers
    reoffer_poll: float = 0.25   # board reap/offer cycle period
    poll: float = 0.08           # agent idle poll period
    work_mean: float = 0.2       # mean virtual work per task
    op_lease: float = 0.6        # lease on short probe/commit operations
    record_lease: float = 600.0  # durable records (specs, tokens, dones)
    stream_inflight: int = 0     # keep this many tasks outstanding (0 = off)
    quorum: Optional[int] = None  # ballot quorum (default: worker majority)


@dataclass
class SwarmStats:
    """Everything one swarm run produced (read after the run)."""

    offered: int = 0
    claims: int = 0
    stale_claims: int = 0        # claim results abandoned as too delayed
    abandoned: int = 0           # wip lease gone by completion time
    token_lost: int = 0          # lost the completion-token race
    reoffers: int = 0
    crashes: int = 0
    record_echoes: int = 0       # at-most-twice wire echoes absorbed
    completed_by: Dict[str, int] = field(default_factory=dict)
    done_records: Dict[int, int] = field(default_factory=dict)
    answers: Dict[int, Dict[str, str]] = field(default_factory=dict)

    @property
    def duplicates(self) -> int:
        """Distinct completion records beyond the first per task id.

        Counts distinct *completers*: the token gate forbids two agents
        finishing one task, which is what this must keep at 0.  A wire
        echo of one agent's record (the at-most-twice residue of a lossy
        destructive collect, see :mod:`repro.core.reliability`) lands in
        :attr:`record_echoes` instead.
        """
        return sum(count - 1 for count in self.done_records.values()
                   if count > 1)


class AgentSwarm:
    """The sim-engine blackboard: a board node plus N claimant agents.

    Build it over an existing ``(sim, net, vis)`` world, submit work via
    :meth:`submit` / :meth:`submit_root`, open ballots via
    :meth:`ask_vote`, then :meth:`start` and run the simulator.  Agents
    may be crashed and revived (fresh, empty instances) mid-run —
    :meth:`crash_agent` / :meth:`revive_agent` / :meth:`auto_churn`.
    """

    def __init__(self, sim: Simulator, net: Network, vis: VisibilityGraph,
                 *, agents: Sequence[str] = ("w0", "w1", "w2"),
                 board: str = "board",
                 config: Optional[SwarmConfig] = None,
                 board_config: Optional[TiamatConfig] = None,
                 agent_config: Optional[TiamatConfig] = None,
                 board_worker: bool = False) -> None:
        self.sim = sim
        self.net = net
        self.vis = vis
        self.config = config if config is not None else SwarmConfig()
        self.board_name = board
        self.agent_names = list(agents)
        self.agent_config = agent_config
        self.names = [board] + self.agent_names
        # Planted protocol bugs, consulted at construction time only.
        self._canary_double_claim = probes.canary(probes.CANARY_DOUBLE_CLAIM)
        self._canary_split_vote = probes.canary(probes.CANARY_SPLIT_VOTE)

        self.board = TiamatInstance(sim, net, board, config=board_config)
        self.registry: Dict[str, TiamatInstance] = {board: self.board}
        for name in self.agent_names:
            self.registry[name] = TiamatInstance(sim, net, name,
                                                 config=agent_config)
        vis.connect_clique(self.names)

        #: Claimant roster: the agents, plus the board itself when it
        #: moonlights as a worker (local claims — cheap and race-prone,
        #: exactly what the explorer wants front-loaded).
        self.workers = (list(self.agent_names) if not board_worker
                        else [board] + list(self.agent_names))

        self.stats = SwarmStats()
        self.running = False
        self._specs: Dict[int, TaskSpec] = {}
        self._offered: set = set()
        self._done_agents: Dict[int, set] = {}
        self._completed: Dict[int, float] = {}    # tid -> completion time
        self._missing_since: Dict[int, float] = {}
        self._next_tid = 0
        self._questions: Dict[int, Dict[str, Any]] = {}
        self._votes: Dict[int, Dict[str, Any]] = {}
        self.posted_questions: List[int] = []
        self.posted_votes: List[int] = []

    # -- work intake ----------------------------------------------------
    @property
    def completed(self) -> Dict[int, float]:
        """tid -> virtual completion time, first observation wins."""
        return dict(self._completed)

    @property
    def decisions(self) -> Dict[int, Dict[str, Any]]:
        """qid -> ballot state (``choice``/``decided_at`` once decided)."""
        return {qid: dict(state) for qid, state in self._votes.items()}

    def submit(self, specs: Iterable[TaskSpec]) -> None:
        """Add subtasks to the board (specs are durable, never consumed)."""
        for spec in specs:
            if spec.tid in self._specs:
                raise ValueError(f"duplicate task id {spec.tid}")
            self._specs[spec.tid] = spec
            self._next_tid = max(self._next_tid, spec.tid + 1)
            self._board_out(Tuple(SPEC_TAG, spec.tid, spec.payload,
                                  ",".join(str(d) for d in spec.deps)))

    def submit_root(self, payload: str, *, fanout: int = 3,
                    depth: int = 2, rng: Any = None) -> List[TaskSpec]:
        """Decompose a root task and submit the resulting DAG."""
        specs = decompose(payload, fanout=fanout, depth=depth,
                          base_tid=self._next_tid, rng=rng)
        self.submit(specs)
        return specs

    def ask_question(self, qid: int, text: str) -> None:
        """Broadcast a question; answers are collected inject-then-continue."""
        self._questions[qid] = {"asked_at": self.sim.now, "text": text}
        self.stats.answers.setdefault(qid, {})
        self.posted_questions.append(qid)
        self._board_out(Tuple(QUESTION_TAG, qid, text))

    def ask_vote(self, qid: int, options: Sequence[str]) -> None:
        """Open a ballot: the question tuple plus its decision token."""
        self._votes[qid] = {"asked_at": self.sim.now,
                            "options": tuple(options),
                            "choice": None, "decided_at": None,
                            "decided_by": None}
        self.posted_votes.append(qid)
        self._board_out(Tuple(VOTE_Q_TAG, qid, ",".join(options)))
        self._board_out(Tuple(DECIDE_TOKEN_TAG, qid))

    # -- lifecycle ------------------------------------------------------
    def start(self) -> None:
        """Spawn the board process and one driver process per worker."""
        self.running = True
        self.sim.spawn(self._board_proc())
        for index, name in enumerate(self.workers):
            self.sim.spawn(self._agent_proc(name, index))

    def stop(self) -> None:
        self.running = False

    def crash_agent(self, name: str) -> None:
        """Kill an agent: its space — wip markers, votes, records — dies."""
        if name == self.board_name:
            raise ValueError("the board is the durable anchor; crash agents")
        inst = self.registry.pop(name, None)
        if inst is not None:
            inst.shutdown()
            self.stats.crashes += 1

    def revive_agent(self, name: str) -> None:
        """Bring an agent back as a fresh, empty instance."""
        if name in self.registry:
            return
        inst = TiamatInstance(self.sim, self.net, name,
                              config=self.agent_config)
        for other in self.names:
            if other != name:
                self.vis.set_visible(name, other, True)
        self.registry[name] = inst

    def auto_churn(self, mean_uptime: float, mean_downtime: float,
                   rng: Any = None) -> None:
        """Cycle every agent through exponential crash/revive periods."""
        rng = rng if rng is not None else self.sim.rng("agents/churn")
        for name in self.agent_names:
            self.sim.spawn(self._churn_proc(name, mean_uptime,
                                            mean_downtime, rng))

    def _churn_proc(self, name: str, mean_up: float, mean_down: float,
                    rng: Any):
        while True:
            yield self.sim.timeout(rng.expovariate(1.0 / mean_up))
            if not self.running:
                return
            if name in self.registry:
                self.crash_agent(name)
            yield self.sim.timeout(rng.expovariate(1.0 / mean_down))
            if not self.running:
                return
            self.revive_agent(name)

    # -- board ----------------------------------------------------------
    def _board_out(self, tup: Tuple, duration: Optional[float] = None) -> None:
        try:
            self.board.out(tup, requester=_req(
                duration if duration is not None
                else self.config.record_lease))
        except LeaseError:
            pass  # board storage refusal: allowed weather under pressure

    def _offer(self, tid: int, *, first: bool) -> None:
        spec = self._specs[tid]
        self._board_out(Tuple(TASK_TAG, tid, spec.payload))
        if first:
            self._board_out(Tuple(TOKEN_TAG, tid))
            self.stats.offered += 1
        else:
            self.stats.reoffers += 1
            probes.emit("agents.reoffer", task=tid, now=self.sim.now)
        self._missing_since.pop(tid, None)

    def _mark_complete(self, tid: int) -> None:
        if tid not in self._completed:
            self._completed[tid] = self.sim.now
        self._missing_since.pop(tid, None)

    def _ready_to_offer(self) -> List[int]:
        return [tid for tid, spec in self._specs.items()
                if tid not in self._offered
                and all(dep in self._completed for dep in spec.deps)]

    def _board_proc(self):
        cfg = self.config
        sim = self.sim
        stream_rng = sim.rng("agents/stream")
        while self.running:
            # 1. Offer every spec whose dependencies have completed.
            for tid in sorted(self._ready_to_offer()):
                self._offered.add(tid)
                self._offer(tid, first=True)
            # 2. Inject completions as they arrive (never block on them).
            for _ in range(32):
                op = self.board.inp(DONE_PATTERN,
                                    requester=_req(cfg.op_lease))
                done = yield op.event
                if done is None:
                    break
                tid, agent = done.fields[1], done.fields[2]
                seen = self._done_agents.setdefault(tid, set())
                if agent in seen:
                    # A lost CLAIM_ACCEPT downgrades the destructive
                    # collect to at-most-twice: the producer restores the
                    # record after we already took it, and it comes round
                    # again.  The token gate makes a same-agent record
                    # unique, so a repeat is a wire echo — absorb it.
                    self.stats.record_echoes += 1
                    continue
                seen.add(agent)
                count = self.stats.done_records.get(tid, 0) + 1
                self.stats.done_records[tid] = count
                self.stats.completed_by[agent] = (
                    self.stats.completed_by.get(agent, 0) + 1)
                self._mark_complete(tid)
            # 3. Inject broadcast-question answers the same way.
            for _ in range(32):
                op = self.board.inp(ANSWER_PATTERN,
                                    requester=_req(cfg.op_lease))
                ans = yield op.event
                if ans is None:
                    break
                qid, agent, value = ans.fields[1], ans.fields[2], ans.fields[3]
                self.stats.answers.setdefault(qid, {})[agent] = value
            # 4. Reap: re-offer abandoned claims once their lease has
            #    provably expired (missing for claim_ttl + grace).
            for tid in sorted(self._offered):
                if tid in self._completed:
                    continue
                probe = self.board.rdp(Pattern(TASK_TAG, tid, Formal(str)),
                                       requester=_req(cfg.op_lease))
                if (yield probe.event) is not None:
                    self._missing_since.pop(tid, None)
                    continue  # still on offer
                tok = self.board.rdp(Pattern(TOKEN_TAG, tid),
                                     requester=_req(cfg.op_lease))
                if (yield tok.event) is None:
                    # Token consumed: the task completed even if the done
                    # record died with its producer.
                    self._mark_complete(tid)
                    continue
                wip = self.board.rdp(Pattern(WIP_TAG, tid, Formal(str)),
                                     requester=_req(cfg.op_lease))
                if (yield wip.event) is not None:
                    self._missing_since.pop(tid, None)
                    continue  # claim lease still alive somewhere
                since = self._missing_since.setdefault(tid, sim.now)
                if sim.now - since >= cfg.claim_ttl + cfg.reoffer_grace:
                    self._offer(tid, first=False)
            # 5. Streaming supply: keep the board saturated.
            if cfg.stream_inflight > 0:
                outstanding = len(self._offered) - len(self._completed)
                while outstanding < cfg.stream_inflight:
                    fresh = self.submit_root(f"root{self._next_tid}",
                                             fanout=4, depth=1,
                                             rng=stream_rng)
                    outstanding += len(fresh)
            yield sim.timeout(cfg.reoffer_poll)

    # -- agents ---------------------------------------------------------
    def _record_decision(self, qid: int, choice: str, agent: str) -> None:
        state = self._votes.get(qid)
        if state is not None and state["choice"] is None:
            state["choice"] = choice
            state["decided_at"] = self.sim.now
            state["decided_by"] = agent

    def _alive(self, name: str, inst: TiamatInstance) -> bool:
        """Whether ``inst`` is still the live incarnation of ``name``.

        Churn fires at timer boundaries, i.e. between two yields of an
        agent generator — so every phase re-checks this after *every*
        yield before issuing another operation: a crashed instance is
        detached from the network and must never originate new ops.
        """
        return self.registry.get(name) is inst

    def _agent_proc(self, name: str, index: int):
        cfg = self.config
        sim = self.sim
        rng = sim.rng(f"agents/{name}")
        answered: set = set()
        settled: set = set()   # ballots this agent saw decided
        while self.running:
            inst = self.registry.get(name)
            if inst is None:
                yield sim.timeout(cfg.poll)
                continue
            if not self._canary_double_claim:
                # (The double_claim planted bug races straight to the
                # board so the claim collision lands within the
                # shrinker's event budget.)
                yield from self._ballot_phase(inst, name, index, settled)
                if not self._alive(name, inst):
                    continue
                yield from self._question_phase(inst, name, answered)
                if not self._alive(name, inst):
                    continue
            yield from self._claim_phase(inst, name, rng)

    def _ballot_phase(self, inst: TiamatInstance, name: str, index: int,
                      settled: set):
        """Discover open ballots, vote once, rd-quorum tally, decide."""
        cfg = self.config
        sim = self.sim
        for qid in list(self.posted_votes):
            if qid in settled or not self._alive(name, inst):
                continue
            if self._canary_split_vote:
                # Planted bug: a quorum of one — decide straight from our
                # own preference, skipping ballot discovery, the roster
                # tally and the decision token.  Two agents with
                # different preferences immediately decide conflictingly.
                state = self._votes.get(qid)
                options = list(state["options"]) if state else []
                if not options:
                    continue
                choice = options[(index + qid) % len(options)]
                probes.emit("agents.decide", question=qid, choice=choice,
                            agent=name, now=sim.now)
                self._record_decision(qid, choice, name)
                settled.add(qid)
                continue
            q_op = inst.rdp(Pattern(VOTE_Q_TAG, qid, Formal(str)),
                            requester=_req(cfg.op_lease))
            question = yield q_op.event
            if question is None or not self._alive(name, inst):
                continue
            options = question.fields[2].split(",")
            choice = options[(index + qid) % len(options)]
            # Self-healing ballot: our vote lives on our own space and
            # dies with a crash, so re-deposit whenever it is missing.
            # The choice is a pure function of (agent, question), hence
            # re-voting can never flip a ballot.
            mine_op = inst.rdp(Pattern(VOTE_TAG, qid, name, Formal(str)),
                               requester=_req(cfg.op_lease))
            mine = yield mine_op.event
            if not self._alive(name, inst):
                continue
            if mine is None:
                try:
                    inst.out(Tuple(VOTE_TAG, qid, name, choice),
                             requester=_req(cfg.record_lease))
                except LeaseError:
                    continue
            counts: Dict[str, int] = {}
            for peer in self.workers:
                if not self._alive(name, inst):
                    return
                v_op = inst.rdp(Pattern(VOTE_TAG, qid, peer, Formal(str)),
                                requester=_req(cfg.op_lease))
                vote = yield v_op.event
                if vote is not None:
                    counts[vote.fields[3]] = counts.get(vote.fields[3], 0) + 1
            if not self._alive(name, inst):
                return
            # Decision rule: once a quorum of ballots is *observed* (a
            # majority of the roster by default), the plurality choice
            # wins, ties broken lexicographically — deterministic, so
            # every tallier that sees a quorum computes the same winner,
            # and the decision token serializes them regardless.
            quorum = (cfg.quorum if cfg.quorum is not None
                      else len(self.workers) // 2 + 1)
            winner = (max(sorted(counts), key=lambda c: counts[c])
                      if counts else None)
            if winner is not None and sum(counts.values()) >= quorum:
                t_op = inst.inp(Pattern(DECIDE_TOKEN_TAG, qid),
                                requester=_req(cfg.op_lease))
                token = yield t_op.event
                if token is not None:
                    probes.emit("agents.decide", question=qid, choice=winner,
                                agent=name, now=sim.now)
                    self._record_decision(qid, winner, name)
                    settled.add(qid)
                    if self._alive(name, inst):
                        try:
                            inst.out(Tuple(DECISION_TAG, qid, winner),
                                     requester=_req(cfg.record_lease))
                        except LeaseError:
                            pass
                    continue
                if not self._alive(name, inst):
                    return
            d_op = inst.rdp(Pattern(DECISION_TAG, qid, Formal(str)),
                            requester=_req(cfg.op_lease))
            if (yield d_op.event) is not None:
                settled.add(qid)

    def _question_phase(self, inst: TiamatInstance, name: str,
                        answered: set):
        """Answer each broadcast question exactly once."""
        cfg = self.config
        for qid in list(self.posted_questions):
            if qid in answered or not self._alive(name, inst):
                continue
            q_op = inst.rdp(Pattern(QUESTION_TAG, qid, Formal(str)),
                            requester=_req(cfg.op_lease))
            question = yield q_op.event
            if question is None or not self._alive(name, inst):
                continue
            try:
                inst.out(Tuple(ANSWER_TAG, qid, name,
                               f"{name}:{question.fields[2]}"),
                         requester=_req(cfg.record_lease))
                answered.add(qid)
            except LeaseError:
                pass

    def _claim_phase(self, inst: TiamatInstance, name: str, rng: Any):
        """One bid/claim/work/complete cycle: the leased ``inp``."""
        cfg = self.config
        sim = self.sim
        claim_started = sim.now
        if self._canary_double_claim:
            # Planted bug: "claim" with a non-destructive read, directed
            # straight at the board and pinned to the lowest offer — the
            # offer stays on the board, so every claimant acquires the
            # same task while the first claim's lease is still live.
            lowest = min(self._specs, default=0)
            op = inst.rdp_at(self.board.handle(),
                             Pattern(TASK_TAG, lowest, Formal(str)),
                             requester=_req(cfg.claim_ttl))
        else:
            op = inst.inp(TASK_PATTERN, requester=_req(cfg.claim_ttl))
        task = yield op.event
        if task is None:
            yield sim.timeout(cfg.poll * (0.5 + rng.random()))
            return
        if sim.now - claim_started > cfg.reoffer_grace:
            # The claim result arrived so late the board may already have
            # re-offered this task: voluntarily abandon it (the token
            # still guarantees at most one completion).
            self.stats.stale_claims += 1
            return
        tid = task.fields[1]
        now = sim.now
        self.stats.claims += 1
        probes.emit("agents.claim", task=tid, agent=name,
                    expires_at=now + cfg.claim_ttl, now=now)
        if not self._alive(name, inst):
            probes.emit("agents.release", task=tid, agent=name, now=sim.now)
            return  # claimed into a node that died mid-flight
        wip = Tuple(WIP_TAG, tid, name)
        try:
            inst.out(wip, requester=_req(cfg.claim_ttl))
        except LeaseError:
            probes.emit("agents.release", task=tid, agent=name, now=sim.now)
            return
        yield sim.timeout(cfg.work_mean * (0.5 + rng.random()))
        if not self._alive(name, inst):
            return  # crashed mid-work; wip died with the old space
        w_op = inst.inp(Pattern.for_tuple(wip), requester=_req(cfg.op_lease))
        held = yield w_op.event
        probes.emit("agents.release", task=tid, agent=name, now=sim.now)
        if held is None or not self._alive(name, inst):
            self.stats.abandoned += 1
            return  # our claim lease expired: the reaper owns it now
        # Blocking take: the completion token *should* be sitting on the
        # board, so carry the full reliability machinery (retransmission,
        # claim retries) for the one op the whole cycle hinges on.  On a
        # lossy wire a non-blocking probe misses tuples that exist; a
        # missed token strands the task until the reaper notices.
        t_op = inst.in_(Pattern(TOKEN_TAG, tid), requester=_req(cfg.op_lease))
        token = yield t_op.event
        if token is None:
            self.stats.token_lost += 1
            return  # a re-offered copy finished first: no duplicate
        if not self._alive(name, inst):
            return  # token died with us; the reaper completes via absence
        try:
            inst.out(Tuple(DONE_TAG, tid, name, f"r{tid}"),
                     requester=_req(cfg.record_lease))
        except LeaseError:
            pass  # record lost; the reaper completes via the token


# ---------------------------------------------------------------------------
# The portable engine: the same protocol over repro.connect handles
# ---------------------------------------------------------------------------
@dataclass
class HandleSessionResult:
    """Outcome of one front-door blackboard session."""

    runtime: str
    tasks: int
    completed: int
    duplicates: int
    completed_by: Dict[str, int]
    decision: Optional[str]
    answers: int
    elapsed: float

    @property
    def complete(self) -> bool:
        return self.completed == self.tasks and self.duplicates == 0


def _handle_claim_cycle(worker: Any, name: str) -> Optional[int]:
    """One claim/work/complete cycle over the handle vocabulary.

    Returns the completed task id, or ``None`` when no offer was won or
    the completion token was lost.
    """
    task = worker.inp(TASK_PATTERN)
    if task is None:
        return None
    tid = int(task.fields[1])
    wip = Tuple(WIP_TAG, tid, name)
    worker.out(wip, lease_duration=30.0)
    held = worker.inp(Pattern.for_tuple(wip))
    if held is None:
        return None
    token = worker.inp(Pattern(TOKEN_TAG, tid))
    if token is None:
        return None
    worker.out(Tuple(DONE_TAG, tid, name, f"r{tid}"), lease_duration=600.0)
    return tid


def _handle_vote(worker: Any, name: str, index: int, qid: int) -> bool:
    """Discover the ballot and cast one vote; True once voted."""
    question = worker.rdp(Pattern(VOTE_Q_TAG, qid, Formal(str)))
    if question is None:
        return False
    options = question.fields[2].split(",")
    worker.out(Tuple(VOTE_TAG, qid, name, options[index % len(options)]),
               lease_duration=600.0)
    return True


def run_handles_session(runtime: str = "sim", *, agents: int = 3,
                        tasks: int = 8, config: Optional[TiamatConfig] = None,
                        wall_budget: float = 30.0,
                        runtime_options: Optional[dict] = None,
                        ) -> HandleSessionResult:
    """Run a small blackboard session through ``repro.connect``.

    The board deposits independent task offers, completion tokens and one
    ballot; workers claim, complete and vote through the same tuple
    vocabulary as :class:`AgentSwarm`.  On ``sim`` the workers are driven
    round-robin from this thread (the sim kernel is single-threaded); on
    ``threads``/``aio`` every worker runs on a real OS thread against its
    own handle.
    """
    import repro

    names = [f"w{i}" for i in range(agents)]
    deadline = _time.monotonic() + wall_budget
    with repro.connect(runtime=runtime, config=config,
                       **(runtime_options or {})) as rt:
        board = rt.node("board")
        workers = {name: rt.node(name) for name in names}
        for i, a in enumerate(["board"] + names):
            for b in (["board"] + names)[i + 1:]:
                rt.set_visible(a, b)
        for tid in range(tasks):
            board.out(Tuple(TASK_TAG, tid, f"job{tid}"), lease_duration=600.0)
            board.out(Tuple(TOKEN_TAG, tid), lease_duration=600.0)
        board.out(Tuple(VOTE_Q_TAG, 0, "alpha,beta"), lease_duration=600.0)
        board.out(Tuple(DECIDE_TOKEN_TAG, 0), lease_duration=600.0)

        completed_by = {name: 0 for name in names}

        def worker_loop(name: str, index: int) -> None:
            worker = workers[name]
            voted = False
            idle = 0
            while idle < 3 and _time.monotonic() < deadline:
                if not voted:
                    voted = _handle_vote(worker, name, index, 0)
                tid = _handle_claim_cycle(worker, name)
                if tid is None:
                    idle += 1
                    _time.sleep(0.002)
                else:
                    idle = 0
                    completed_by[name] += 1

        started = _time.monotonic()
        if runtime == "sim":
            voted = {name: False for name in names}
            idle_rounds = 0
            while idle_rounds < 3 and _time.monotonic() < deadline:
                progressed = False
                for index, name in enumerate(names):
                    worker = workers[name]
                    if not voted[name]:
                        voted[name] = _handle_vote(worker, name, index, 0)
                    tid = _handle_claim_cycle(worker, name)
                    if tid is not None:
                        progressed = True
                        completed_by[name] += 1
                idle_rounds = 0 if progressed else idle_rounds + 1
        else:
            threads = [threading.Thread(target=worker_loop, args=(name, i),
                                        daemon=True)
                       for i, name in enumerate(names)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(max(0.0, deadline - _time.monotonic()))

        # rd-quorum tally from the main thread (any handle may tally).
        tallier = workers[names[0]]
        counts: Dict[str, int] = {}
        for peer in names:
            vote = tallier.rd(Pattern(VOTE_TAG, 0, peer, Formal(str)),
                              timeout=2.0)
            if vote is not None:
                counts[vote.fields[3]] = counts.get(vote.fields[3], 0) + 1
        decision: Optional[str] = None
        winner = max(counts, key=lambda c: counts[c], default=None)
        if winner is not None and counts[winner] >= len(names) // 2 + 1:
            if tallier.inp(Pattern(DECIDE_TOKEN_TAG, 0)) is not None:
                tallier.out(Tuple(DECISION_TAG, 0, winner),
                            lease_duration=600.0)
                decision = winner

        # Collect completion records at the board (exactly-once inp).
        done_records: Dict[int, int] = {}
        answers = 0
        while True:
            done = board.inp(DONE_PATTERN)
            if done is None:
                break
            tid = int(done.fields[1])
            done_records[tid] = done_records.get(tid, 0) + 1
        elapsed = _time.monotonic() - started

    duplicates = sum(c - 1 for c in done_records.values() if c > 1)
    return HandleSessionResult(
        runtime=runtime, tasks=tasks, completed=len(done_records),
        duplicates=duplicates, completed_by=completed_by,
        decision=decision, answers=answers, elapsed=elapsed)
