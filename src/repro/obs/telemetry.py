"""In-space cluster telemetry: health rows published as leased tuples.

Dogfooding generative communication: each instance periodically
``out``s a compact ``("_telemetry", node_id, epoch, payload)`` tuple
into its own space under a short lease, so the space itself is the
telemetry transport — a dead node stops renewing and the lease
garbage-collects its rows with no reaper process.  A collector scans
the visible spaces, keeps the freshest epoch per node, and classifies
each node as ``ok`` / ``degraded`` / ``overloaded`` / ``partitioned``
for the ``repro top`` CLI.

Telemetry is **opt-in** (``TiamatConfig.telemetry_enabled``): the
publisher schedules simulator events and negotiates leases, so unlike
the flight recorder it perturbs seeded schedules.  The ``_telemetry``
tag is skip-listed by the durable storage backends, the persistence
snapshots, and the exactly-once oracle — health rows are ephemeral
operational data, not application state.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional

from repro.errors import LeaseError
from repro.leasing import LeaseTerms, SimpleLeaseRequester
from repro.tuples import Tuple

__all__ = [
    "TELEMETRY_TAG",
    "NodeHealth",
    "TelemetryPublisher",
    "classify_node",
    "collect_cluster_health",
    "render_top",
]

#: First field of every telemetry tuple.  The leading underscore keeps it
#: out of ordinary application patterns; the skip-tag lists in
#: :mod:`repro.tuples.storage.base` and :mod:`repro.tuples.persistence`
#: keep it out of durable logs and snapshots.
TELEMETRY_TAG = "_telemetry"

HEALTH_OK = "ok"
HEALTH_DEGRADED = "degraded"
HEALTH_OVERLOADED = "overloaded"
HEALTH_PARTITIONED = "partitioned"

#: A node whose freshest row is older than this many publish periods is
#: considered cut off from the collector's vantage point.
STALE_PERIODS = 3.0


class TelemetryPublisher:
    """Periodically deposits one leased health row for an instance.

    The row's payload is a compact sorted-key JSON object of windowed
    counters (deltas since the previous beat) plus instantaneous gauges.
    A refused lease simply skips the beat — telemetry competes for
    capacity like any other work and must never amplify an overload.
    """

    def __init__(self, instance: Any, period: Optional[float] = None,
                 lease_duration: Optional[float] = None):
        config = instance.config
        self.instance = instance
        self.period = period if period is not None else config.telemetry_period
        self.lease_duration = (lease_duration if lease_duration is not None
                               else config.telemetry_lease)
        self.epoch = 0
        self.published = 0
        self.skipped = 0
        self._last: Dict[str, int] = {}
        self._timer = None

    def start(self) -> "TelemetryPublisher":
        if self._timer is None:
            self._timer = self.instance.sim.schedule(self.period, self._beat)
        return self

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _beat(self) -> None:
        self._timer = None
        if self.instance._detached:
            return
        self.publish()
        self._timer = self.instance.sim.schedule(self.period, self._beat)

    def publish(self) -> bool:
        """Deposit one health row now; False when the lease was refused."""
        self.epoch += 1
        payload = json.dumps(self._payload(), separators=(",", ":"),
                             sort_keys=True)
        row = Tuple(TELEMETRY_TAG, self.instance.name, self.epoch, payload)
        requester = SimpleLeaseRequester(
            LeaseTerms(duration=self.lease_duration))
        try:
            self.instance.out(row, requester=requester)
        except LeaseError:
            self.skipped += 1
            return False
        self.published += 1
        return True

    def _payload(self) -> Dict[str, Any]:
        inst = self.instance
        current = {
            "ops": inst.ops_started,
            "unsat": inst.ops_unsatisfied,
            "sheds": getattr(inst.server, "sheds", 0),
            "retx": inst.reliability.retransmits,
            "rexp": inst.reliability.expired,
        }
        payload: Dict[str, Any] = {
            f"{key}_w": value - self._last.get(key, 0)
            for key, value in current.items()
        }
        self._last = current
        payload["t"] = inst.sim.now
        payload["resident"] = inst.space.count()
        payload["pending"] = inst.reliability.pending_count
        admission = getattr(inst.server, "admission", None)
        if admission is not None:
            utilisation = getattr(admission, "utilisation", None)
            if callable(utilisation):
                try:
                    payload["util"] = round(float(utilisation()), 4)
                except Exception:
                    pass
        return payload


class NodeHealth:
    """One node's row in the cluster health model."""

    __slots__ = ("node", "status", "epoch", "age", "payload")

    def __init__(self, node: str, status: str, epoch: Optional[int],
                 age: Optional[float], payload: Dict[str, Any]):
        self.node = node
        self.status = status
        self.epoch = epoch
        self.age = age
        self.payload = payload

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<NodeHealth {self.node} {self.status} epoch={self.epoch}>"


def classify_node(payload: Dict[str, Any], age: float,
                  period: float) -> str:
    """Map one health row (plus its freshness) to a status string."""
    if age > STALE_PERIODS * period:
        return HEALTH_PARTITIONED
    if payload.get("sheds_w", 0) > 0 or payload.get("util", 0.0) > 0.85:
        return HEALTH_OVERLOADED
    ops = payload.get("ops_w", 0)
    unsat = payload.get("unsat_w", 0)
    if (payload.get("retx_w", 0) > 2 or payload.get("rexp_w", 0) > 0
            or (ops > 0 and unsat / ops > 0.5)
            or payload.get("pending", 0) > 8):
        return HEALTH_DEGRADED
    return HEALTH_OK


def collect_cluster_health(spaces: Iterable[Any], now: float,
                           period: float = 1.0,
                           expected: Iterable[str] = ()
                           ) -> Dict[str, NodeHealth]:
    """Aggregate telemetry rows from *spaces* into per-node health.

    *spaces* is any iterable of space-like objects exposing
    ``snapshot() -> list[Tuple]`` (both :class:`LocalTupleSpace` and the
    threaded runtime's ``ThreadSafeTupleSpace`` do).  Rows are unioned
    across spaces and only each node's freshest epoch counts.  Nodes in
    *expected* with no live row at all — lease expired, so the space
    already reclaimed them — are reported ``partitioned`` with no
    payload.
    """
    freshest: Dict[str, tuple] = {}
    for space in spaces:
        for tup in space.snapshot():
            fields = tup.fields
            if len(fields) != 4 or fields[0] != TELEMETRY_TAG:
                continue
            node, epoch, raw = fields[1], fields[2], fields[3]
            if not isinstance(node, str) or not isinstance(epoch, int):
                continue
            best = freshest.get(node)
            if best is None or epoch > best[0]:
                freshest[node] = (epoch, raw)
    health: Dict[str, NodeHealth] = {}
    for node in sorted(set(freshest) | set(expected)):
        best = freshest.get(node)
        if best is None:
            health[node] = NodeHealth(node, HEALTH_PARTITIONED, None, None, {})
            continue
        epoch, raw = best
        try:
            payload = json.loads(raw)
        except (TypeError, ValueError):
            payload = {}
        age = max(0.0, now - float(payload.get("t", now)))
        status = classify_node(payload, age, period)
        health[node] = NodeHealth(node, status, epoch, age, payload)
    return health


def render_top(health: Dict[str, NodeHealth], now: float,
               title: str = "cluster") -> str:
    """Render the health model as a fixed-width ``repro top`` table."""
    headers = ("NODE", "STATUS", "EPOCH", "AGE", "OPS/W", "UNSAT/W",
               "SHEDS/W", "RETX/W", "PEND", "RESIDENT")
    rows: List[tuple] = []
    for node in sorted(health):
        entry = health[node]
        p = entry.payload
        rows.append((
            node,
            entry.status,
            "-" if entry.epoch is None else str(entry.epoch),
            "-" if entry.age is None else f"{entry.age:.1f}",
            str(p.get("ops_w", "-")),
            str(p.get("unsat_w", "-")),
            str(p.get("sheds_w", "-")),
            str(p.get("retx_w", "-")),
            str(p.get("pending", "-")),
            str(p.get("resident", "-")),
        ))
    widths = [max(len(headers[i]), *(len(r[i]) for r in rows))
              if rows else len(headers[i]) for i in range(len(headers))]
    lines = [f"repro top — {title} @ t={now:.2f} "
             f"({len(rows)} node{'s' if len(rows) != 1 else ''})"]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    counts: Dict[str, int] = {}
    for entry in health.values():
        counts[entry.status] = counts.get(entry.status, 0) + 1
    summary = ", ".join(f"{counts[s]} {s}" for s in sorted(counts))
    lines.append(f"health: {summary or 'no nodes'}")
    return "\n".join(lines)
