"""The observability hub: one registry + one (optional) tracer per runtime.

Every runtime — each :class:`~repro.sim.kernel.Simulator` and each
real-thread registry — owns one :class:`Observability` hub, reached lazily
through ``sim.obs`` so simulations that never look at telemetry never build
any.  The hub bundles:

* a :class:`~repro.obs.metrics.MetricsRegistry` that the whole stack feeds
  (network, lease managers, the reliability sublayer, tuple stores, query
  servers, and the kernel itself) — almost entirely through *collect-time
  callbacks* over the components' existing cheap counters, so the hot path
  is untouched and snapshots can never drift from component accounting;
* an opt-in :class:`~repro.obs.tracing.Tracer`
  (:meth:`Observability.start_trace`) for causal per-operation timelines;
* an always-on :class:`~repro.obs.flight.FlightRecorder` — per-node ring
  buffers of recent protocol activity, dumped post-mortem (PR 7); and
* an :class:`~repro.obs.slo.SLOTracker` fed every finished operation's
  end-to-end latency (histograms, exemplars, burn-rate objectives).

All of them are **observationally passive**: recording consumes no
randomness and schedules no events, so a telemetered run of seed *s* is
bit-identical to a bare run of seed *s*.

The clock is injected: virtual time under the simulation kernel, wall time
under :mod:`repro.runtime`.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.obs.flight import FlightRecorder
from repro.obs.metrics import (
    DEFAULT_COUNT_BUCKETS,
    MetricsRegistry,
)
from repro.obs.slo import SLOTracker
from repro.obs.tracing import Tracer

__all__ = ["Observability"]


class Observability:
    """Per-runtime telemetry hub: registry, tracer, flight recorder, SLOs."""

    def __init__(self, clock: Callable[[], float],
                 thread_safe: bool = False) -> None:
        self.clock = clock
        self.thread_safe = thread_safe
        self.registry = MetricsRegistry(thread_safe=thread_safe)
        self.tracer: Optional[Tracer] = None
        self.flight = FlightRecorder(clock)
        self.slo = SLOTracker(clock, registry=self.registry,
                              flight=self.flight)

    # ------------------------------------------------------------------
    # Tracing lifecycle
    # ------------------------------------------------------------------
    def start_trace(self, *networks, max_events: int = 200_000) -> Tracer:
        """Install (or reuse) the tracer and tap the given networks."""
        if self.tracer is None:
            self.tracer = Tracer(self.clock, max_events=max_events,
                                 thread_safe=self.thread_safe)
        for network in networks:
            self.tracer.attach(network)
        return self.tracer

    def stop_trace(self) -> Optional[Tracer]:
        """Detach the tracer from every network; returns it (events kept)."""
        tracer, self.tracer = self.tracer, None
        if tracer is not None:
            tracer.detach()
        return tracer

    # ------------------------------------------------------------------
    # Collectors: one observe_* per instrumented component
    # ------------------------------------------------------------------
    def observe_kernel(self, sim) -> None:
        """Kernel counters + (when enabled) the per-handler profile."""
        reg = self.registry
        key = id(sim)
        reg.callback("sim_events_processed_total",
                     lambda: [((), sim.events_processed)],
                     help="Callbacks executed by the simulation run loop.",
                     kind="counter", key=key)
        reg.callback("sim_pending_timers",
                     lambda: [((), sim.pending)],
                     help="Live (non-cancelled) callbacks in the event heap.",
                     key=key)
        reg.callback("sim_virtual_time_seconds",
                     lambda: [((), sim.now)],
                     help="Current virtual clock value.", key=key)

        def handler_calls():
            return [((name,), rec[0])
                    for name, rec in sim.handler_profile.items()]

        def handler_seconds():
            return [((name,), rec[1])
                    for name, rec in sim.handler_profile.items()]

        reg.callback("sim_handler_calls_total", handler_calls,
                     help="Run-loop callback invocations by handler "
                          "(requires sim.enable_profiling()).",
                     labels=("handler",), kind="counter", key=key)
        reg.callback("sim_handler_seconds_total", handler_seconds,
                     help="Wall-clock perf_counter seconds spent in each "
                          "handler (requires sim.enable_profiling()).",
                     labels=("handler",), kind="counter", key=key)

    def observe_network(self, network) -> None:
        """Frame/byte/drop accounting, reading ``network.stats`` live."""
        reg = self.registry
        key = id(network)
        stats = network.stats

        def sent():
            for name, node in stats.nodes.items():
                yield (name, "unicast"), node.sent_unicast
                yield (name, "multicast"), node.sent_multicast

        def received():
            for name, node in stats.nodes.items():
                yield (name,), node.received

        def nbytes():
            for name, node in stats.nodes.items():
                yield (name, "sent"), node.bytes_sent
                yield (name, "received"), node.bytes_received

        def drops():
            for reason, count in stats.drops_by_reason.items():
                yield (reason,), count

        def by_kind():
            for name, node in stats.nodes.items():
                for kind, count in node.by_kind.items():
                    yield (name, kind), count

        reg.callback("net_frames_sent_total", sent,
                     help="Frames originated, by node and cast mode.",
                     labels=("node", "cast"), kind="counter", key=key)
        reg.callback("net_frames_received_total", received,
                     help="Frames delivered to each node.",
                     labels=("node",), kind="counter", key=key)
        reg.callback("net_bytes_total", nbytes,
                     help="Bytes on the wire, by node and direction.",
                     labels=("node", "direction"), kind="counter", key=key)
        reg.callback("net_frames_dropped_total", drops,
                     help="Frames that never arrived, by drop reason.",
                     labels=("reason",), kind="counter", key=key)
        reg.callback("net_frames_kind_total", by_kind,
                     help="Frames originated, by node and protocol kind.",
                     labels=("node", "kind"), kind="counter", key=key)
        reg.callback("net_messages_total",
                     lambda: [((), stats.total_messages)],
                     help="Total frames originated on this network.",
                     kind="counter", key=key)

        def batching():
            yield ("envelopes",), network.batch_envelopes
            yield ("frames",), network.batched_frames

        reg.callback("net_batch_total", batching,
                     help="Frame batching: physical envelopes sent and "
                          "logical frames coalesced into them (zero "
                          "unless the network batches).",
                     labels=("unit",), kind="counter", key=key)

    def observe_lease_manager(self, manager, node: str) -> None:
        """Grant/refusal/revocation accounting for one lease manager."""
        reg = self.registry
        key = id(manager)

        def events():
            yield (node, "grant"), manager.grants
            yield (node, "refusal"), manager.refusals
            yield (node, "requester_rejection"), manager.requester_rejections
            yield (node, "expiration"), manager.expirations
            yield (node, "revocation"), manager.revocations

        reg.callback("lease_events_total", events,
                     help="Lease lifecycle outcomes by node and event.",
                     labels=("node", "event"), kind="counter", key=key)
        reg.callback("lease_negotiations_total",
                     lambda: [((node,), manager.negotiations)],
                     help="Negotiation rounds started (granted or not).",
                     labels=("node",), kind="counter", key=key)
        reg.callback("lease_active",
                     lambda: [((node,), manager.active_count)],
                     help="Currently active leases.",
                     labels=("node",), key=key)
        reg.callback("lease_storage_used_bytes",
                     lambda: [((node,), manager.storage_used)],
                     help="Bytes committed against storage-bearing leases.",
                     labels=("node",), key=key)

    def observe_reliability(self, channel, node: str) -> None:
        """Ack/retransmit/dedup accounting for one reliable channel."""
        reg = self.registry
        key = id(channel)

        def events():
            yield (node, "sent"), channel.sent
            yield (node, "retransmit"), channel.retransmits
            yield (node, "acked"), channel.acked
            yield (node, "expired"), channel.expired
            yield (node, "dedup_drop"), channel.duplicates_dropped
            yield (node, "ack_sent"), channel.acks_sent
            yield (node, "ack_piggybacked"), channel.acks_piggybacked

        reg.callback("reliability_events_total", events,
                     help="Reliable-sublayer events by node "
                          "(retransmits, dedup hits, expiries...).",
                     labels=("node", "event"), kind="counter", key=key)
        reg.callback("reliability_pending",
                     lambda: [((node,), channel.pending_count)],
                     help="Reliable frames still awaiting acknowledgement.",
                     labels=("node",), key=key)
        reg.callback("reliability_epoch",
                     lambda: [((node,), channel.epoch)],
                     help="Current incarnation epoch (jumps on restart).",
                     labels=("node",), key=key)
        backoff = reg.histogram(
            "reliability_backoff_delay_seconds",
            help="Delay chosen before each (re)transmission attempt.",
            labels=("node",))
        channel.backoff_observer = backoff.labels(node=node).observe

    def observe_server(self, server, node: str) -> None:
        """Serving-side accounting for one query server."""
        reg = self.registry
        key = id(server)

        def events():
            yield (node, "served"), server.served
            yield (node, "refused"), server.refused
            yield (node, "offer_made"), server.offers_made
            yield (node, "offer_won"), server.offers_won
            yield (node, "offer_put_back"), server.offers_put_back
            yield (node, "duplicate_query"), server.duplicate_queries

        reg.callback("serving_events_total", events,
                     help="Remote-query serving outcomes by node.",
                     labels=("node", "event"), kind="counter", key=key)
        reg.callback("serving_active",
                     lambda: [((node,), server.active_servings)],
                     help="Remote operations currently being worked on.",
                     labels=("node",), key=key)
        # Admission-plane families are registered only for servers that
        # actually run a serving queue or an admission controller, so
        # default-off runs export byte-identical snapshots to the
        # pre-admission registry.
        queued = getattr(server, "queue_wait_observer", "absent") != "absent"
        if queued and server.instance.config.serve_cost > 0:
            reg.callback("serving_queue_depth",
                         lambda: [((node,), server.queue_depth)],
                         help="Inbound QUERYs waiting for a dispatch worker.",
                         labels=("node",), key=("queue", key))
            wait_hist = reg.histogram(
                "admission_queue_wait_seconds",
                help="Realized wait between QUERY arrival and dispatch.",
                labels=("node",))
            server.queue_wait_observer = wait_hist.labels(node=node).observe
        admission = getattr(server, "admission", None)
        if admission is not None:
            self.observe_admission(admission, server, node)

    def observe_admission(self, admission, server, node: str) -> None:
        """Admit/shed accounting for one admission controller."""
        reg = self.registry
        key = id(admission)

        def decisions():
            yield (node, "admitted"), admission.admitted
            yield (node, "shed"), admission.shed_total

        def sheds():
            for reason, count in sorted(admission.shed_by_reason.items()):
                yield (node, reason), count

        reg.callback("admission_decisions_total", decisions,
                     help="Admission verdicts on arriving QUERYs by node.",
                     labels=("node", "outcome"), kind="counter", key=key)
        reg.callback("admission_shed_total", sheds,
                     help="QUERYs shed at admission, by node and reason.",
                     labels=("node", "reason"), kind="counter", key=key)
        reg.callback("admission_stale_dropped_total",
                     lambda: [((node,), server.stale_dropped)],
                     help="Queued QUERYs dropped at dispatch because their "
                          "origin lease had already run out.",
                     labels=("node",), kind="counter", key=("stale", key))
        delay_hist = reg.histogram(
            "admission_queue_delay_seconds",
            help="Estimated queue delay priced at each admission decision.",
            labels=("node",))
        admission.delay_observer = delay_hist.labels(node=node).observe
        if admission.fair_share is not None:
            fair = admission.fair_share

            def debts():
                for peer, debt in fair.debts():
                    yield (node, peer), debt

            reg.callback("admission_peer_debt", debts,
                         help="Fair-share token-bucket debt (worker-seconds "
                              "below full) per origin peer.",
                         labels=("node", "peer"), key=("debt", key))

    def observe_space(self, space, name: str) -> None:
        """Residency + matching-cost accounting for one tuple space."""
        reg = self.registry
        key = id(space)
        store = space.store

        def events():
            yield (name, "deposit"), space.deposits
            yield (name, "consumed"), space.consumed
            yield (name, "expired"), space.expirations

        reg.callback("tuples_events_total", events,
                     help="Deposits, consumptions, and expiries by space.",
                     labels=("space", "event"), kind="counter", key=key)
        reg.callback("tuples_resident",
                     lambda: [((name,), store.visible_count)],
                     help="Tuples currently visible to queries.",
                     labels=("space",), key=key)
        reg.callback("tuples_waiters",
                     lambda: [((name,), space.waiter_count)],
                     help="Registered, unsatisfied blocking waiters.",
                     labels=("space",), key=key)
        reg.callback("tuples_scans_total",
                     lambda: [((name,), store.scans)],
                     help="Match scans run against the store's indexes.",
                     labels=("space",), kind="counter", key=key)

        def cache_events():
            yield (name, "hit"), store.scan_cache_hits
            yield (name, "miss"), store.scan_cache_misses

        reg.callback("tuples_scan_cache_total", cache_events,
                     help="Scan-cache hits and misses by space (a hit "
                          "serves a memoized match list, examining 0 "
                          "candidate entries).",
                     labels=("space", "result"), kind="counter", key=key)
        scan_hist = reg.histogram(
            "tuples_match_scan_length",
            help="Candidate entries examined per match scan.",
            labels=("space",), buckets=DEFAULT_COUNT_BUCKETS)
        store.scan_observer = scan_hist.labels(space=name).observe

    def observe_storage(self, backend, name: str) -> None:
        """Durable-log accounting for one storage backend.

        Registered only when a backend actually attaches to a space
        (:meth:`~repro.tuples.storage.base.StorageBackend.attach`), so runs
        that never opt into durability export a bit-identical registry.
        """
        reg = self.registry
        key = id(backend)

        def records():
            yield (name, "out"), backend.records_out
            yield (name, "remove"), backend.records_remove

        reg.callback("storage_records_total", records,
                     help="Durable records written, by space and kind.",
                     labels=("space", "kind"), kind="counter", key=key)
        reg.callback("storage_bytes_appended_total",
                     lambda: [((name,), backend.bytes_appended)],
                     help="Bytes appended to the durable log.",
                     labels=("space",), kind="counter", key=key)

        def maintenance():
            yield (name, "compaction"), backend.compactions
            yield (name, "recovery"), backend.recoveries
            yield (name, "record_replayed"), backend.records_replayed
            yield (name, "torn_truncation"), backend.torn_truncations

        reg.callback("storage_maintenance_total", maintenance,
                     help="Log maintenance events: compactions, recoveries, "
                          "records replayed, torn tails truncated.",
                     labels=("space", "event"), kind="counter", key=key)
        reg.callback("storage_torn_bytes_total",
                     lambda: [((name,), backend.torn_bytes)],
                     help="Bytes discarded truncating torn log tails.",
                     labels=("space",), kind="counter", key=key)

    def observe_recovery(self, instance) -> None:
        """Crash-recovery + anti-entropy rejoin accounting for one node.

        Registered on a node's first durable recovery (never for nodes
        that never recover), keeping default registries unchanged.
        """
        reg = self.registry
        node = instance.name
        key = ("recovery", id(instance))

        def events():
            yield (node, "recovery"), instance.recoveries
            yield (node, "restored"), instance.tuples_restored
            yield (node, "reclaimed"), instance.tuples_reclaimed
            yield (node, "ghost_purged"), instance.ghosts_purged
            yield (node, "rejoin_dropped"), instance.rejoin_dropped
            yield (node, "sync_request_sent"), instance.sync_requests_sent
            yield (node, "sync_response_sent"), instance.sync_responses_sent
            yield (node, "rejoin_completed"), instance.rejoins_completed

        reg.callback("recovery_events_total", events,
                     help="Durable-recovery outcomes by node: tuples "
                          "restored/reclaimed, ghosts purged by the "
                          "anti-entropy rejoin, sync traffic.",
                     labels=("node", "event"), kind="counter", key=key)

    def observe_instance(self, instance) -> None:
        """Wire one Tiamat instance's components into the registry."""
        node = instance.name
        reg = self.registry
        key = id(instance)

        def ops():
            yield (node, "started"), instance.ops_started
            yield (node, "satisfied_local"), instance.ops_satisfied_local
            yield (node, "satisfied_remote"), instance.ops_satisfied_remote
            yield (node, "unsatisfied"), instance.ops_unsatisfied

        reg.callback("core_ops_total", ops,
                     help="Logical operations by origin node and outcome.",
                     labels=("node", "state"), kind="counter", key=key)
        self.observe_lease_manager(instance.leases, node)
        self.observe_reliability(instance.reliability, node)
        self.observe_server(instance.server, node)
        if getattr(instance, "fabric", None) is not None:
            self.observe_fabric(instance.fabric, node, key)

    def observe_fabric(self, fabric, node: str, key) -> None:
        """Wire one instance's fabric layer into the registry.

        The scatter-width histogram is registered by the fabric manager
        itself (it observes on the hot path); this adds the shard-map
        version gauge — map churn and inter-node skew are visible by
        comparing it across nodes — and the migration/promotion/
        replication counters.
        """
        reg = self.registry

        def version():
            yield (node,), float(fabric.map.version)

        reg.callback("fabric_map_version", version,
                     help="Monotonic local shard-map version (bumps on "
                          "every renewal, sweep, or merge).",
                     labels=("node",), kind="gauge", key=("fabric", key))

        def events():
            yield (node, "deposit_routed"), fabric.deposits_routed
            yield (node, "deposit_owned"), fabric.deposits_owned
            yield (node, "replica_stored"), fabric.replicas_stored
            yield (node, "invalidation"), fabric.invalidations
            yield (node, "migration_out"), fabric.migrations_out
            yield (node, "migration_in"), fabric.migrations_in
            yield (node, "migration_dropped"), fabric.migrations_dropped
            yield (node, "promotion"), fabric.promotions
            yield (node, "promotion_purge"), fabric.promotion_purges
            yield (node, "map_push"), fabric.map_pushes

        reg.callback("fabric_events_total", events,
                     help="Fabric lifecycle events by node: routed/owned "
                          "deposits, replication, invalidation, two-phase "
                          "migrations, witness-verified promotions, map "
                          "pushes.",
                     labels=("node", "event"), kind="counter",
                     key=("fabric_events", key))
