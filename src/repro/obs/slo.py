"""SLO latency plane: per-op-kind histograms, exemplars, burn rates.

Every finished operation reports its end-to-end latency here (wired
from :meth:`repro.core.ops.Operation._finalize`).  The tracker keeps

* a ``slo_op_latency_seconds`` histogram per op kind in the hub's
  metrics registry,
* *exemplars* — the slowest operations in the current window retain
  their op id plus a slice of their node's flight ring, so a latency
  spike always comes with its own black-box excerpt, and
* windowed objectives (e.g. "p99 of ``in`` below 5 ticks over 200
  ticks"): each record re-evaluates the window lazily; crossing the
  error budget emits a burn-rate breach into the metrics registry and
  the flight stream.

Like every ``repro.obs`` component the tracker is passive: it never
schedules events and consumes no randomness — windows are evaluated on
the observations' own clock readings.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

__all__ = ["SLOObjective", "SLOTracker"]

#: Minimum observations inside a window before an objective can breach;
#: stops a single slow op from tripping p99 alarms on an idle node.
MIN_WINDOW_SAMPLES = 10

#: How many exemplars (slowest ops) are retained per kind per window.
EXEMPLAR_SLOTS = 5

#: Flight-ring events captured alongside each exemplar.
EXEMPLAR_TRACE_EVENTS = 64


class SLOObjective:
    """A windowed latency objective for one operation kind."""

    __slots__ = ("kind", "percentile", "threshold", "window", "name")

    def __init__(self, kind: str, percentile: float, threshold: float,
                 window: float):
        if not 0.0 < percentile < 1.0:
            raise ValueError("percentile must be in (0, 1)")
        if threshold <= 0 or window <= 0:
            raise ValueError("threshold and window must be positive")
        self.kind = kind
        self.percentile = percentile
        self.threshold = threshold
        self.window = window
        self.name = f"p{percentile * 100:g}_{kind}_lt_{threshold:g}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SLOObjective(kind={self.kind!r}, "
                f"percentile={self.percentile}, "
                f"threshold={self.threshold}, window={self.window})")


class _ObjectiveState:
    """Sliding window of (time, within-threshold) samples."""

    __slots__ = ("objective", "samples", "bad", "in_breach")

    def __init__(self, objective: SLOObjective):
        self.objective = objective
        self.samples: Deque[Tuple[float, bool]] = deque()
        self.bad = 0
        self.in_breach = False

    def observe(self, now: float, latency: float) -> Optional[float]:
        """Add a sample; return the burn rate when a breach *starts*."""
        horizon = now - self.objective.window
        samples = self.samples
        while samples and samples[0][0] < horizon:
            _, was_ok = samples.popleft()
            if not was_ok:
                self.bad -= 1
        ok = latency <= self.objective.threshold
        samples.append((now, ok))
        if not ok:
            self.bad += 1
        if len(samples) < MIN_WINDOW_SAMPLES:
            self.in_breach = False
            return None
        budget = 1.0 - self.objective.percentile
        burn = (self.bad / len(samples)) / budget
        breached = burn > 1.0
        started = breached and not self.in_breach
        self.in_breach = breached
        return burn if started else None


class SLOTracker:
    """Aggregates operation latencies into histograms and objectives."""

    def __init__(self, clock: Callable[[], float], registry: Any = None,
                 flight: Any = None):
        self.clock = clock
        self.registry = registry
        self.flight = flight
        self.objectives: List[SLOObjective] = []
        self._states: List[_ObjectiveState] = []
        self._hist_children: Dict[str, Any] = {}
        self._hist = None
        self._breach_counter = None
        self.breaches: List[Dict[str, Any]] = []
        # kind -> list of exemplar dicts, kept sorted-by-latency ascending
        self._exemplars: Dict[str, List[Dict[str, Any]]] = {}
        self.exemplar_window = 200.0

    def add_objective(self, objective: SLOObjective) -> SLOObjective:
        self.objectives.append(objective)
        self._states.append(_ObjectiveState(objective))
        self.exemplar_window = max(self.exemplar_window, objective.window)
        return objective

    # -- recording ---------------------------------------------------------
    def record(self, kind: str, latency: float, op_id: Optional[str],
               node: Optional[str], ring: Any = None) -> None:
        """Report one finished operation's end-to-end latency."""
        child = self._hist_children.get(kind)
        if child is None:
            child = self._histogram_child(kind)
        child.observe(latency)
        now = self.clock()
        self._note_exemplar(kind, now, latency, op_id, node, ring)
        for state in self._states:
            if state.objective.kind != kind:
                continue
            burn = state.observe(now, latency)
            if burn is not None:
                self._breach(state.objective, now, burn, op_id, node, ring)

    def _histogram_child(self, kind: str):
        if self._hist is None:
            if self.registry is not None:
                self._hist = self.registry.histogram(
                    "slo_op_latency_seconds",
                    "End-to-end operation latency by op kind.",
                    labels=("kind",))
            else:  # standalone tracker (tests) — count locally
                self._hist = _LocalHistogramFamily()
        child = self._hist.labels(kind=kind)
        self._hist_children[kind] = child
        return child

    def _note_exemplar(self, kind: str, now: float, latency: float,
                       op_id: Optional[str], node: Optional[str],
                       ring: Any) -> None:
        slot = self._exemplars.setdefault(kind, [])
        horizon = now - self.exemplar_window
        if slot and slot[0]["t"] < horizon:
            slot[:] = [e for e in slot if e["t"] >= horizon]
        if len(slot) >= EXEMPLAR_SLOTS and latency <= slot[0]["latency"]:
            return
        exemplar = {"t": now, "latency": latency, "op_id": op_id,
                    "node": node, "kind": kind,
                    "trace": _ring_slice(ring, op_id)}
        slot.append(exemplar)
        slot.sort(key=lambda e: e["latency"])
        if len(slot) > EXEMPLAR_SLOTS:
            del slot[0]

    def _breach(self, objective: SLOObjective, now: float, burn: float,
                op_id: Optional[str], node: Optional[str],
                ring: Any) -> None:
        if self._breach_counter is None and self.registry is not None:
            self._breach_counter = self.registry.counter(
                "slo_breaches_total",
                "SLO burn-rate breach events by objective.",
                labels=("kind", "objective"))
        if self._breach_counter is not None:
            self._breach_counter.labels(
                kind=objective.kind, objective=objective.name).inc()
        event = {"t": now, "objective": objective.name,
                 "kind": objective.kind, "burn_rate": burn,
                 "op_id": op_id, "node": node}
        self.breaches.append(event)
        if ring is not None:
            ring.append(now, "slo_breach", op_id, objective.kind, None,
                        objective.name)

    # -- inspection --------------------------------------------------------
    def exemplars(self, kind: Optional[str] = None) -> List[Dict[str, Any]]:
        """Current exemplars, slowest first."""
        kinds = [kind] if kind is not None else sorted(self._exemplars)
        out: List[Dict[str, Any]] = []
        for k in kinds:
            out.extend(reversed(self._exemplars.get(k, [])))
        return out


def _ring_slice(ring: Any, op_id: Optional[str],
                limit: int = EXEMPLAR_TRACE_EVENTS) -> List[Dict[str, Any]]:
    """The op's tail of its node's flight ring (empty when unavailable)."""
    if ring is None or op_id is None:
        return []
    events = [e for e in ring.events() if e.get("op_id") == op_id]
    return events[-limit:]


class _LocalHistogramFamily:
    """Registry-free fallback so a bare tracker still counts latencies."""

    def __init__(self):
        self._children: Dict[str, "_LocalHistogramChild"] = {}

    def labels(self, kind: str) -> "_LocalHistogramChild":
        child = self._children.get(kind)
        if child is None:
            child = self._children[kind] = _LocalHistogramChild()
        return child


class _LocalHistogramChild:
    def __init__(self):
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
