"""The unified telemetry registry: counters, gauges, histograms, collectors.

Production middleware exposes one registry that every subsystem feeds, not a
scatter of per-component counter attributes.  :class:`MetricsRegistry` is
that registry for the whole repository:

* **Counters** (monotone), **gauges** (set/inc/dec), and **fixed-bucket
  histograms**, all optionally **labelled** — `family.labels(node="a")`
  returns the per-label-set child, Prometheus style.
* **Callback families** — the registry's collector mechanism.  Components
  that already keep cheap always-on counters (``NetworkStats``, the lease
  manager, the reliability sublayer, the query server) are *migrated onto
  the registry* by registering a collect-time callback that reads their
  live values, so the hot path pays nothing and the snapshot can never
  drift from the component's own accounting.  Re-registering under the
  same ``key`` replaces the previous callback (crash/restart of an
  instance re-binds its collectors instead of double-counting).
* **Exporters** — :meth:`render_prometheus` (the text exposition format)
  and :meth:`snapshot` (a plain JSON-able dict), used by the ``repro
  stats`` CLI subcommand and the benchmark report hook.
* Optional **thread safety** (``thread_safe=True``) for the real-thread
  runtime; the simulated stack runs single-threaded and skips the lock.

The module is dependency-free (stdlib only) so every layer of the stack may
import it without cycles.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Callable, Iterable, Optional, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "DEFAULT_TIME_BUCKETS",
    "DEFAULT_COUNT_BUCKETS",
]

#: Default buckets for duration-shaped histograms (seconds).
DEFAULT_TIME_BUCKETS = (0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
                        0.25, 0.5, 1.0, 2.5, 5.0, 10.0)

#: Default buckets for count-shaped histograms (scan lengths, queue depths).
DEFAULT_COUNT_BUCKETS = (0.0, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0,
                         200.0, 500.0, 1000.0)

_VALID_KINDS = ("counter", "gauge", "histogram")


class _NullLock:
    """A no-op context manager used when thread safety is not requested."""

    def __enter__(self) -> "_NullLock":
        return self

    def __exit__(self, *exc: Any) -> None:
        return None


class Counter:
    """A monotone counter child (one label set of a family)."""

    __slots__ = ("labels", "value", "_lock")

    def __init__(self, labels: dict, lock) -> None:
        self.labels = labels
        self.value = 0.0
        self._lock = lock

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError("counters can only go up")
        with self._lock:
            self.value += amount


class Gauge:
    """A settable gauge child (one label set of a family)."""

    __slots__ = ("labels", "value", "_lock")

    def __init__(self, labels: dict, lock) -> None:
        self.labels = labels
        self.value = 0.0
        self._lock = lock

    def set(self, value: float) -> None:
        """Set the gauge to ``value``."""
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (may be negative)."""
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Subtract ``amount``."""
        self.inc(-amount)


class Histogram:
    """A fixed-bucket histogram child: cumulative counts, sum, and count."""

    __slots__ = ("labels", "buckets", "counts", "sum", "count", "_lock")

    def __init__(self, labels: dict, buckets: Sequence[float], lock) -> None:
        self.labels = labels
        self.buckets = tuple(buckets)          # upper bounds, +Inf implied
        self.counts = [0] * (len(self.buckets) + 1)
        self.sum = 0.0
        self.count = 0
        self._lock = lock

    def observe(self, value: float) -> None:
        """Record one observation."""
        with self._lock:
            self.sum += value
            self.count += 1
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    self.counts[i] += 1
                    return
            self.counts[-1] += 1

    def cumulative(self) -> list[tuple[float, int]]:
        """Prometheus-style cumulative ``(le, count)`` pairs, +Inf last."""
        out: list[tuple[float, int]] = []
        running = 0
        for bound, n in zip(self.buckets, self.counts):
            running += n
            out.append((bound, running))
        out.append((math.inf, running + self.counts[-1]))
        return out


class MetricFamily:
    """A named metric with a fixed label-name set and per-label-set children.

    ``labels(**kw)`` returns (creating on first use) the child for one
    label-value combination; families declared with no label names have a
    single anonymous child reachable through the family's own ``inc`` /
    ``set`` / ``observe`` convenience proxies.
    """

    def __init__(self, name: str, kind: str, help: str,
                 labelnames: Sequence[str], lock,
                 buckets: Optional[Sequence[float]] = None) -> None:
        if kind not in _VALID_KINDS:
            raise ValueError(f"unknown metric kind {kind!r}")
        self.name = name
        self.kind = kind
        self.help = help
        self.labelnames = tuple(labelnames)
        self.buckets = tuple(buckets) if buckets is not None else None
        self._children: dict[tuple, Any] = {}
        self._callbacks: dict[Any, Callable] = {}
        self._lock = lock

    # ------------------------------------------------------------------
    def labels(self, **labelvalues: Any) -> Any:
        """The child for one label-value set (created on first use)."""
        if set(labelvalues) != set(self.labelnames):
            raise ValueError(
                f"{self.name}: labels {sorted(labelvalues)} != declared "
                f"{sorted(self.labelnames)}")
        key = tuple(str(labelvalues[n]) for n in self.labelnames)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                labels = dict(zip(self.labelnames, key))
                if self.kind == "counter":
                    child = Counter(labels, self._lock)
                elif self.kind == "gauge":
                    child = Gauge(labels, self._lock)
                else:
                    child = Histogram(labels,
                                      self.buckets or DEFAULT_TIME_BUCKETS,
                                      self._lock)
                self._children[key] = child
            return child

    # Convenience proxies for label-less families ----------------------
    def inc(self, amount: float = 1.0) -> None:
        """Increment the anonymous (label-less) child."""
        self.labels().inc(amount)

    def set(self, value: float) -> None:
        """Set the anonymous (label-less) child."""
        self.labels().set(value)

    def dec(self, amount: float = 1.0) -> None:
        """Decrement the anonymous (label-less) gauge child."""
        self.labels().dec(amount)

    def observe(self, value: float) -> None:
        """Observe into the anonymous (label-less) child."""
        self.labels().observe(value)

    # ------------------------------------------------------------------
    def add_callback(self, fn: Callable[[], Iterable[tuple]], key: Any) -> None:
        """Register a collect-time sample source for this family.

        ``fn()`` must yield ``(labelvalues, value)`` pairs where
        ``labelvalues`` is a tuple aligned with the family's label names
        (or an empty tuple for label-less families).  Re-registering with
        the same ``key`` replaces the previous callback.
        """
        with self._lock:
            self._callbacks[key] = fn

    # ------------------------------------------------------------------
    def samples(self) -> list[dict]:
        """All current samples: stored children plus callback sources."""
        out: list[dict] = []
        with self._lock:
            children = list(self._children.values())
            callbacks = list(self._callbacks.values())
        for child in children:
            if self.kind == "histogram":
                out.append({"labels": dict(child.labels),
                            "count": child.count, "sum": child.sum,
                            "buckets": child.cumulative()})
            else:
                out.append({"labels": dict(child.labels),
                            "value": child.value})
        for fn in callbacks:
            for labelvalues, value in fn():
                labels = dict(zip(self.labelnames,
                                  (str(v) for v in labelvalues)))
                out.append({"labels": labels, "value": value})
        return out


class MetricsRegistry:
    """The process-wide (or simulation-wide) family registry."""

    def __init__(self, thread_safe: bool = False,
                 bucket_overrides: Optional[dict] = None) -> None:
        self.thread_safe = thread_safe
        self._lock = threading.RLock() if thread_safe else _NullLock()
        self._families: dict[str, MetricFamily] = {}
        #: Per-family histogram bucket boundaries, consulted when the
        #: family is first declared (by name).  Lets a deployment retune
        #: e.g. ``admission_queue_wait_seconds`` without touching the
        #: declaring component.
        self._bucket_overrides: dict[str, tuple] = {
            name: tuple(bounds)
            for name, bounds in (bucket_overrides or {}).items()
        }

    def set_buckets(self, name: str, buckets: Sequence[float]) -> None:
        """Override the bucket boundaries a histogram family will use.

        Must be called before the family's first declaration; overriding
        an already-materialized family is an error (its children hold
        counts in the old bucket layout).
        """
        bounds = tuple(buckets)
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("bucket bounds must be non-empty and ascending")
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                raise ValueError(
                    f"histogram {name!r} already declared; set buckets "
                    f"before the first observation")
            self._bucket_overrides[name] = bounds

    # ------------------------------------------------------------------
    # Declaration
    # ------------------------------------------------------------------
    def _family(self, name: str, kind: str, help: str,
                labels: Sequence[str],
                buckets: Optional[Sequence[float]] = None) -> MetricFamily:
        with self._lock:
            family = self._families.get(name)
            if family is None:
                override = self._bucket_overrides.get(name)
                family = MetricFamily(name, kind, help, labels, self._lock,
                                      buckets=override if override is not None
                                      else buckets)
                self._families[name] = family
                return family
        if family.kind != kind:
            raise ValueError(f"metric {name!r} already declared as "
                             f"{family.kind}, not {kind}")
        if family.labelnames != tuple(labels):
            raise ValueError(f"metric {name!r} already declared with labels "
                             f"{family.labelnames}, not {tuple(labels)}")
        return family

    def counter(self, name: str, help: str = "",
                labels: Sequence[str] = ()) -> MetricFamily:
        """Declare (or fetch) a counter family."""
        return self._family(name, "counter", help, labels)

    def gauge(self, name: str, help: str = "",
              labels: Sequence[str] = ()) -> MetricFamily:
        """Declare (or fetch) a gauge family."""
        return self._family(name, "gauge", help, labels)

    def histogram(self, name: str, help: str = "",
                  labels: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_TIME_BUCKETS) -> MetricFamily:
        """Declare (or fetch) a fixed-bucket histogram family."""
        return self._family(name, "histogram", help, labels, buckets=buckets)

    def callback(self, name: str, fn: Callable[[], Iterable[tuple]],
                 help: str = "", labels: Sequence[str] = (),
                 kind: str = "gauge", key: Any = None) -> MetricFamily:
        """Declare a family fed by a collect-time callback (see
        :meth:`MetricFamily.add_callback`); ``key`` deduplicates
        re-registrations from restarted components."""
        family = self._family(name, kind, help, labels)
        family.add_callback(fn, key if key is not None else fn)
        return family

    # ------------------------------------------------------------------
    # Introspection and export
    # ------------------------------------------------------------------
    def get(self, name: str) -> Optional[MetricFamily]:
        """The family with this name, or None."""
        return self._families.get(name)

    def families(self) -> list[MetricFamily]:
        """All declared families, sorted by name."""
        with self._lock:
            return [self._families[n] for n in sorted(self._families)]

    def snapshot(self) -> dict:
        """A plain JSON-able dict of every family and its samples.

        Samples are sorted by label set (matching
        :meth:`render_prometheus`), so two snapshots of identical state
        are byte-identical regardless of child/callback creation order —
        snapshot diffs never churn across runs.
        """
        out: dict = {}
        for family in self.families():
            raw = family.samples()
            raw.sort(key=lambda s: sorted(s["labels"].items()))
            samples = []
            for sample in raw:
                if "buckets" in sample:
                    samples.append({
                        "labels": sample["labels"],
                        "count": sample["count"],
                        "sum": sample["sum"],
                        "buckets": {_le(bound): count
                                    for bound, count in sample["buckets"]},
                    })
                else:
                    samples.append({"labels": sample["labels"],
                                    "value": sample["value"]})
            out[family.name] = {
                "kind": family.kind,
                "help": family.help,
                "samples": samples,
            }
        return out

    def render_prometheus(self) -> str:
        """The Prometheus text exposition format for every family."""
        lines: list[str] = []
        for family in self.families():
            if family.help:
                lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            samples = family.samples()
            samples.sort(key=lambda s: sorted(s["labels"].items()))
            for sample in samples:
                if "buckets" in sample:
                    for bound, count in sample["buckets"]:
                        labels = dict(sample["labels"])
                        labels["le"] = _le(bound)
                        lines.append(f"{family.name}_bucket"
                                     f"{_labelstr(labels)} {count}")
                    base = _labelstr(sample["labels"])
                    lines.append(f"{family.name}_sum{base} "
                                 f"{_num(sample['sum'])}")
                    lines.append(f"{family.name}_count{base} "
                                 f"{sample['count']}")
                else:
                    lines.append(f"{family.name}"
                                 f"{_labelstr(sample['labels'])} "
                                 f"{_num(sample['value'])}")
        return "\n".join(lines) + ("\n" if lines else "")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MetricsRegistry families={len(self._families)}>"


def _le(bound: float) -> str:
    """Prometheus ``le`` label rendering for a bucket bound."""
    if math.isinf(bound):
        return "+Inf"
    return f"{bound:g}"


def _num(value: float) -> str:
    """Compact numeric rendering (integers without trailing .0)."""
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return f"{value:g}"


def _labelstr(labels: dict) -> str:
    """``{k="v",...}`` rendering, empty string for no labels."""
    if not labels:
        return ""
    inner = ",".join(f'{k}="{_escape(str(v))}"'
                     for k, v in sorted(labels.items()))
    return "{" + inner + "}"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
