"""Causal operation tracing: reconstruct what happened to *one* operation.

Every logical Tiamat operation already mints an operation id (``a#17``)
that is stamped into every protocol frame it causes — QUERY, offers,
claim verdicts, CANCELs, and (because the reliability sublayer copies the
payload) every retransmission of any of them.  The :class:`Tracer` exploits
that: it taps one or more networks' frame hooks (send, deliver, drop) and
accepts local annotations from the instance layer (operation start/finish,
lease grants and refusals, serving-side decisions), then groups everything
by op-id so a single distributed ``in()`` can be reconstructed end-to-end,
*including* its drops, retransmit attempts, and lease refusals.

Exports:

* :meth:`Tracer.span_tree` — the operation as a tree: the origin's root
  span with one child span per contacted peer, each holding its
  chronological event list;
* :meth:`Tracer.waterfall` — the tree rendered as a text waterfall for
  terminals and docs;
* :meth:`Tracer.chrome_trace` — Chrome trace-event JSON (one process per
  operation, one thread per instance) loadable in Perfetto / chrome://tracing.

The tracer is **opt-in and observationally passive**: nothing in the stack
records anything until a tracer is installed (``sim.obs.start_trace``),
and recording consumes no randomness and schedules no events, so traced
and untraced runs of the same seed are bit-identical.

Clocks are injected: virtual time under the simulation kernel, wall time
under the real-thread runtime.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Optional

__all__ = ["TraceEvent", "Tracer"]

#: Payload keys copied into a frame event's detail (small, JSON-able).
_DETAIL_KEYS = ("rseq", "repoch", "found", "entry_id", "op", "did", "rid",
                "ok", "deadline")

#: Render order weight so local annotations sort stably among frames.
_EVENT_GLYPH = {
    "op_start": "▶",
    "op_end": "■",
    "lease": "§",
    "serve": "§",
    "note": "·",
    "send": "→",
    "retransmit": "↻",
    "deliver": "✓",
    "drop": "✗",
}


class _NullLock:
    """Free-of-charge stand-in for a Lock under single-threaded runtimes."""

    def __enter__(self) -> "_NullLock":
        return self

    def __exit__(self, *exc: Any) -> None:
        return None


class TraceEvent:
    """One recorded occurrence attributed to an operation (or orphaned)."""

    __slots__ = ("time", "event", "node", "src", "dst", "kind", "op_id",
                 "detail", "drop_reason")

    def __init__(self, time: float, event: str, node: Optional[str],
                 op_id: Optional[str], src: Optional[str] = None,
                 dst: Optional[str] = None, kind: Optional[str] = None,
                 detail: Optional[dict] = None,
                 drop_reason: Optional[str] = None) -> None:
        self.time = time
        self.event = event
        self.node = node
        self.op_id = op_id
        self.src = src
        self.dst = dst
        self.kind = kind
        self.detail = detail if detail is not None else {}
        self.drop_reason = drop_reason

    def as_dict(self) -> dict:
        """Plain-dict form (for JSON export and the span tree)."""
        out = {"t": self.time, "event": self.event, "node": self.node,
               "op_id": self.op_id}
        if self.src is not None:
            out["src"] = self.src
        if self.dst is not None:
            out["dst"] = self.dst
        if self.kind is not None:
            out["kind"] = self.kind
        if self.drop_reason is not None:
            out["drop_reason"] = self.drop_reason
        if self.detail:
            out["detail"] = dict(self.detail)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<TraceEvent t={self.time:.3f} {self.event} "
                f"op={self.op_id} {self.src}->{self.dst} {self.kind}>")


class Tracer:
    """Captures per-operation causal timelines across instances."""

    def __init__(self, clock: Callable[[], float],
                 max_events: int = 200_000,
                 thread_safe: bool = False) -> None:
        self.clock = clock
        self.max_events = max_events
        self.events: list[TraceEvent] = []
        self.truncated = 0
        self._by_op: dict[str, list[TraceEvent]] = {}
        self._unsubscribers: list[Callable[[], None]] = []
        self._reliable_seen: set[tuple] = set()
        # Under the threaded runtime many nodes record concurrently; the
        # sim runtime passes thread_safe=False and pays no locking cost.
        if thread_safe:
            import threading
            self._lock: Any = threading.Lock()
        else:
            self._lock = _NullLock()

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------
    def attach(self, network) -> "Tracer":
        """Tap a network's frame hooks (send/deliver + drops)."""
        self._unsubscribers.append(network.on_frame(self._on_frame))
        self._unsubscribers.append(network.on_drop(self._on_drop))
        return self

    def detach(self) -> None:
        """Stop capturing from every attached network (events retained)."""
        for unsubscribe in self._unsubscribers:
            unsubscribe()
        self._unsubscribers.clear()

    # ------------------------------------------------------------------
    # Recording (instance layer + network hooks)
    # ------------------------------------------------------------------
    def _record(self, event: TraceEvent) -> None:
        with self._lock:
            if len(self.events) >= self.max_events:
                self.truncated += 1
                return
            self.events.append(event)
            if event.op_id is not None:
                self._by_op.setdefault(event.op_id, []).append(event)

    def op_started(self, op_id: str, node: str, kind: str,
                   **detail: Any) -> None:
        """The origin instance started a logical operation."""
        self._record(TraceEvent(self.clock(), "op_start", node, op_id,
                                kind=kind, detail=detail))

    def op_finished(self, op_id: str, node: str, satisfied: bool,
                    source: Optional[str]) -> None:
        """The origin operation finalized (matched, expired, or cancelled)."""
        self._record(TraceEvent(self.clock(), "op_end", node, op_id,
                                detail={"satisfied": satisfied,
                                        "source": source}))

    def lease_event(self, op_id: Optional[str], node: str, outcome: str,
                    **detail: Any) -> None:
        """A lease negotiation outcome attributable to an operation."""
        detail["outcome"] = outcome
        self._record(TraceEvent(self.clock(), "lease", node, op_id,
                                detail=detail))

    def note(self, op_id: Optional[str], node: str, label: str,
             **detail: Any) -> None:
        """A free-form local annotation (serving decisions, timeouts...)."""
        detail["label"] = label
        self._record(TraceEvent(self.clock(), "note", node, op_id,
                                detail=detail))

    def _on_frame(self, phase: str, message) -> None:
        payload = message.payload
        op_id = payload.get("op_id")
        detail = {k: payload[k] for k in _DETAIL_KEYS if k in payload}
        event = phase
        if phase == "send":
            rseq = payload.get("rseq")
            if rseq is not None:
                key = (message.src, message.dst, payload.get("kind"),
                       rseq, payload.get("repoch"))
                if key in self._reliable_seen:
                    event = "retransmit"
                else:
                    self._reliable_seen.add(key)
        node = message.src if event in ("send", "retransmit") else message.dst
        self._record(TraceEvent(self.clock(), event, node, op_id,
                                src=message.src, dst=message.dst,
                                kind=message.kind, detail=detail))

    def _on_drop(self, message, reason: str) -> None:
        payload = message.payload
        detail = {k: payload[k] for k in _DETAIL_KEYS if k in payload}
        self._record(TraceEvent(self.clock(), "drop", message.src,
                                payload.get("op_id"), src=message.src,
                                dst=message.dst, kind=message.kind,
                                detail=detail, drop_reason=reason))

    def clear(self) -> None:
        """Forget everything captured so far."""
        self.events.clear()
        self._by_op.clear()
        self._reliable_seen.clear()
        self.truncated = 0

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def op_ids(self) -> list[str]:
        """Every operation id seen, in first-seen order."""
        return list(self._by_op)

    def events_for(self, op_id: str) -> list[TraceEvent]:
        """All events attributed to one operation, chronological."""
        return list(self._by_op.get(op_id, []))

    def instances_for(self, op_id: str) -> list[str]:
        """Every instance that appears in one operation's trace."""
        seen: dict[str, None] = {}
        for event in self._by_op.get(op_id, []):
            for name in (event.node, event.src, event.dst):
                if name is not None:
                    seen.setdefault(name, None)
        return list(seen)

    def retransmits_for(self, op_id: str) -> list[TraceEvent]:
        """Retransmission attempts recorded for one operation."""
        return [e for e in self._by_op.get(op_id, [])
                if e.event == "retransmit"]

    def drops_for(self, op_id: str) -> list[TraceEvent]:
        """Dropped frames recorded for one operation."""
        return [e for e in self._by_op.get(op_id, []) if e.event == "drop"]

    def __len__(self) -> int:
        return len(self.events)

    # ------------------------------------------------------------------
    # Span-tree reconstruction
    # ------------------------------------------------------------------
    def span_tree(self, op_id: str) -> dict:
        """One operation as a tree: root span + one child span per peer.

        Returns a plain JSON-able dict::

            {"op_id", "origin", "kind", "start", "end", "outcome",
             "events": [...root-local events...],
             "peers": [{"peer", "start", "end", "events": [...]}, ...]}
        """
        events = self._by_op.get(op_id, [])
        if not events:
            raise KeyError(f"no trace recorded for op {op_id!r}")
        origin = next((e.node for e in events if e.event == "op_start"), None)
        if origin is None:
            origin = next((e.src for e in events
                           if e.event in ("send", "retransmit")), events[0].node)
        kind = next((e.kind for e in events if e.event == "op_start"), None)
        end_event = next((e for e in events if e.event == "op_end"), None)
        outcome = None
        if end_event is not None:
            outcome = ("satisfied" if end_event.detail.get("satisfied")
                       else "unsatisfied")
        root_events: list[TraceEvent] = []
        peers: dict[str, list[TraceEvent]] = {}
        for event in events:
            peer = self._peer_of(event, origin)
            if peer is None:
                root_events.append(event)
            else:
                peers.setdefault(peer, []).append(event)
        return {
            "op_id": op_id,
            "origin": origin,
            "kind": kind,
            "start": events[0].time,
            "end": events[-1].time,
            "outcome": outcome,
            "source": end_event.detail.get("source") if end_event else None,
            "events": [e.as_dict() for e in root_events],
            "peers": [
                {"peer": peer,
                 "start": evts[0].time,
                 "end": evts[-1].time,
                 "events": [e.as_dict() for e in evts]}
                for peer, evts in peers.items()
            ],
        }

    @staticmethod
    def _peer_of(event: TraceEvent, origin: str) -> Optional[str]:
        """Which peer span an event belongs to (None = the root span)."""
        if event.src is not None and event.dst is not None:
            if event.src == origin:
                return event.dst
            return event.src
        if event.node is not None and event.node != origin:
            return event.node
        return None

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def waterfall(self, op_id: str) -> str:
        """The operation's span tree as a text waterfall."""
        tree = self.span_tree(op_id)
        header = (f"op {tree['op_id']}"
                  + (f" [{tree['kind']}]" if tree["kind"] else "")
                  + f" origin={tree['origin']}"
                  + f" t={tree['start']:.3f}..{tree['end']:.3f}")
        if tree["outcome"] is not None:
            header += f" {tree['outcome']}"
            if tree["source"]:
                header += f" (from {tree['source']})"
        lines = [header]
        for event in tree["events"]:
            lines.append("│ " + self._line(event))
        peers = tree["peers"]
        for i, span in enumerate(peers):
            last = i == len(peers) - 1
            branch = "└─" if last else "├─"
            lines.append(f"{branch} peer {span['peer']} "
                         f"(t={span['start']:.3f}..{span['end']:.3f})")
            pad = "   " if last else "│  "
            for event in span["events"]:
                lines.append(pad + self._line(event))
        return "\n".join(lines)

    @staticmethod
    def _line(event: dict) -> str:
        glyph = _EVENT_GLYPH.get(event["event"], "·")
        bits = [f"t={event['t']:8.3f}", glyph, event["event"]]
        if event.get("kind"):
            bits.append(event["kind"])
        if event.get("src") is not None and event.get("dst") is not None:
            bits.append(f"{event['src']}→{event['dst']}")
        if event.get("drop_reason"):
            bits.append(f"!{event['drop_reason']}")
        detail = event.get("detail") or {}
        rendered = " ".join(f"{k}={v}" for k, v in detail.items()
                            if k not in ("repoch",) and v is not None)
        if rendered:
            bits.append(rendered)
        return " ".join(bits)

    # ------------------------------------------------------------------
    # Chrome trace-event export
    # ------------------------------------------------------------------
    def chrome_trace(self, op_id: Optional[str] = None) -> str:
        """Chrome trace-event JSON (Perfetto-loadable) for one op or all.

        One *process* per operation, one *thread* per instance; spans are
        complete (``X``) events, individual frame/local events are
        instants (``i``).  Timestamps are microseconds.
        """
        op_ids = [op_id] if op_id is not None else self.op_ids()
        trace_events: list[dict] = []
        for pid, oid in enumerate(op_ids, start=1):
            tree = self.span_tree(oid)
            tids: dict[str, int] = {}

            def tid_of(name: Optional[str]) -> int:
                label = name if name is not None else "?"
                if label not in tids:
                    tids[label] = len(tids) + 1
                return tids[label]

            us = 1e6
            trace_events.append({
                "name": (f"{tree['kind'] or 'op'} {oid}"
                         + (f" [{tree['outcome']}]" if tree["outcome"] else "")),
                "ph": "X", "pid": pid, "tid": tid_of(tree["origin"]),
                "ts": tree["start"] * us,
                "dur": max(tree["end"] - tree["start"], 0.0) * us,
                "args": {"op_id": oid, "outcome": tree["outcome"],
                         "source": tree["source"]},
            })
            spans = [(tree["origin"], tree["events"])]
            for peer_span in tree["peers"]:
                trace_events.append({
                    "name": f"peer {peer_span['peer']}",
                    "ph": "X", "pid": pid, "tid": tid_of(peer_span["peer"]),
                    "ts": peer_span["start"] * us,
                    "dur": max(peer_span["end"] - peer_span["start"], 0.0) * us,
                    "args": {"op_id": oid},
                })
                spans.append((peer_span["peer"], peer_span["events"]))
            for owner, events in spans:
                for event in events:
                    name = event["event"]
                    if event.get("kind"):
                        name += f" {event['kind']}"
                    if event.get("drop_reason"):
                        name += f" ({event['drop_reason']})"
                    args = {k: v for k, v in event.items() if k != "t"}
                    trace_events.append({
                        "name": name, "ph": "i", "s": "t",
                        "pid": pid, "tid": tid_of(event.get("node") or owner),
                        "ts": event["t"] * us, "args": args,
                    })
            trace_events.append({"name": "process_name", "ph": "M",
                                 "pid": pid, "tid": 0,
                                 "args": {"name": f"op {oid}"}})
            for name, tid in tids.items():
                trace_events.append({"name": "thread_name", "ph": "M",
                                     "pid": pid, "tid": tid,
                                     "args": {"name": name}})
        return json.dumps({"traceEvents": trace_events,
                           "displayTimeUnit": "ms"})

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Tracer events={len(self.events)} "
                f"ops={len(self._by_op)}>")
