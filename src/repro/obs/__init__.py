"""``repro.obs`` — causal operation tracing and the unified metrics registry.

Two pillars (see ``docs/API.md`` § Observability):

* :class:`MetricsRegistry` — counters, gauges, and fixed-bucket histograms
  with labels, fed across the whole stack (network, leasing, reliability,
  tuple stores, serving, the simulation kernel), exported as Prometheus
  text and JSON snapshots.
* :class:`Tracer` — opt-in causal tracing keyed on operation ids: the full
  distributed span tree of one ``in()``/``rd()``/probe, including drops,
  retransmits, and lease refusals, rendered as a text waterfall or Chrome
  trace-event JSON (loadable in Perfetto).

Both hang off a per-runtime :class:`Observability` hub — ``sim.obs`` under
the simulation kernel (virtual clock), the thread-safe registry of
:mod:`repro.runtime` under real threads (wall clock).  Everything here is
stdlib-only and observationally passive: telemetry never perturbs a seeded
experiment.
"""

from repro.obs.hub import Observability
from repro.obs.metrics import (
    Counter,
    DEFAULT_COUNT_BUCKETS,
    DEFAULT_TIME_BUCKETS,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
)
from repro.obs.tracing import TraceEvent, Tracer

__all__ = [
    "Counter",
    "DEFAULT_COUNT_BUCKETS",
    "DEFAULT_TIME_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "Observability",
    "TraceEvent",
    "Tracer",
]
