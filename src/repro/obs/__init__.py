"""``repro.obs`` — tracing, metrics, flight recorder, SLOs, telemetry.

Four pillars (see ``docs/OBSERVABILITY.md`` for when to reach for which):

* :class:`MetricsRegistry` — counters, gauges, and fixed-bucket histograms
  with labels, fed across the whole stack (network, leasing, reliability,
  tuple stores, serving, the simulation kernel), exported as Prometheus
  text and JSON snapshots.
* :class:`Tracer` — opt-in causal tracing keyed on operation ids: the full
  distributed span tree of one ``in()``/``rd()``/probe, including drops,
  retransmits, and lease refusals, rendered as a text waterfall or Chrome
  trace-event JSON (loadable in Perfetto).
* :class:`FlightRecorder` — always-on fixed-size per-node ring buffers of
  recent protocol activity, dumped as a replayable JSON black box on
  invariant violations, post-crash recovery, or demand (``repro flight``).
* :class:`SLOTracker` — end-to-end per-op-kind latency histograms with
  exemplars and windowed burn-rate objectives; plus the opt-in in-space
  cluster telemetry of :mod:`repro.obs.telemetry` (``repro top``).

Everything hangs off a per-runtime :class:`Observability` hub — ``sim.obs``
under the simulation kernel (virtual clock), the thread-safe registry of
:mod:`repro.runtime` under real threads (wall clock).  Everything here is
stdlib-only and observationally passive: telemetry never perturbs a seeded
experiment (the in-space health rows, which do schedule events, are opt-in).
"""

from repro.obs.flight import (
    FlightRecorder,
    FlightRing,
    load_flight_dump,
    render_flight,
)
from repro.obs.hub import Observability
from repro.obs.metrics import (
    Counter,
    DEFAULT_COUNT_BUCKETS,
    DEFAULT_TIME_BUCKETS,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
)
from repro.obs.slo import SLOObjective, SLOTracker
from repro.obs.telemetry import (
    NodeHealth,
    TELEMETRY_TAG,
    TelemetryPublisher,
    collect_cluster_health,
    render_top,
)
from repro.obs.tracing import TraceEvent, Tracer

__all__ = [
    "Counter",
    "DEFAULT_COUNT_BUCKETS",
    "DEFAULT_TIME_BUCKETS",
    "FlightRecorder",
    "FlightRing",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "NodeHealth",
    "Observability",
    "SLOObjective",
    "SLOTracker",
    "TELEMETRY_TAG",
    "TelemetryPublisher",
    "TraceEvent",
    "Tracer",
    "collect_cluster_health",
    "load_flight_dump",
    "render_flight",
    "render_top",
]
