"""Always-on flight recorder: fixed-size per-node ring buffers.

Every node keeps a small "black box" of its most recent protocol
activity — frames sent/delivered/dropped, operation lifecycle,
lease/admission verdicts, reliability retransmits.  Recording is
passive by construction: an append is index arithmetic plus six field
stores into preallocated slots, never allocates, never touches the
simulator's RNG, and never schedules events, so seeded runs are
bit-identical with the recorder enabled (the default) or disabled
(``REPRO_FLIGHT=off``).

The rings pay for themselves when something goes wrong: a dump is
taken when :class:`repro.check.oracles.InvariantMonitor` records a
violation, when :meth:`TiamatInstance.recover_from` runs after a
crash, or on demand (``repro flight dump``).  Dumps are plain JSON and
``repro flight show`` renders them as a Tracer-style waterfall.
"""

from __future__ import annotations

import json
import os
from typing import Any, Callable, Dict, List, Optional

__all__ = [
    "FLIGHT_DUMP_VERSION",
    "FlightRecorder",
    "FlightRing",
    "dump_to_env_dir",
    "load_flight_dump",
    "render_flight",
]

FLIGHT_DUMP_VERSION = 1

#: Default slots per node ring.  Must comfortably exceed the 64-event
#: post-mortem window the acceptance criteria call for.
DEFAULT_CAPACITY = 512

# Event codes recorded in the rings.  Kept as short strings (interned
# literals at every call site) so appends store references, not copies.
#   send / deliver / drop  — logical frame lifecycle (network layer)
#   op_start / op_end      — operation lifecycle (ops layer)
#   lease_refused / shed / refuse — admission & serving verdicts
#   retransmit / rexpire   — reliable-channel retries and give-ups
#   slo_breach             — SLO burn-rate breach (repro.obs.slo)
#   recover / note         — recovery bookmarks and free-form marks

_GLYPHS = {
    "send": "→",          # →
    "deliver": "✓",       # ✓
    "drop": "✗",          # ✗
    "retransmit": "↻",    # ↻
    "rexpire": "✕",       # ✕
    "op_start": "▶",      # ▶
    "op_end": "■",        # ■
    "lease_refused": "§", # §
    "shed": "§",
    "refuse": "§",
    "slo_breach": "⚠",    # ⚠
    "recover": "⚙",       # ⚙
    "note": "·",          # ·
}


class FlightRing:
    """Fixed-capacity ring of flight events for one node.

    Slots are six parallel preallocated lists mutated in place (reference
    stores only); the append hot path is bounds-free index math plus six
    field stores — no allocation, ever.  (A single flat buffer with
    ``i * 6`` offset arithmetic measures *slower* on modern CPython,
    whose adaptive interpreter specializes the repeated attribute loads.)
    """

    __slots__ = ("node", "capacity", "recorded", "_next",
                 "_t", "_code", "_op", "_kind", "_peer", "_detail")

    def __init__(self, node: str, capacity: int = DEFAULT_CAPACITY):
        if capacity < 64:
            raise ValueError("flight ring capacity must be >= 64")
        self.node = node
        self.capacity = capacity
        self.recorded = 0          # total appends ever (>= live slots)
        self._next = 0             # next slot to overwrite
        self._t: List[float] = [0.0] * capacity
        self._code: List[str] = [""] * capacity
        self._op: List[Optional[str]] = [None] * capacity
        self._kind: List[Optional[str]] = [None] * capacity
        self._peer: List[Optional[str]] = [None] * capacity
        self._detail: List[Any] = [None] * capacity

    def append(self, t: float, code: str, op_id: Optional[str] = None,
               kind: Optional[str] = None, peer: Optional[str] = None,
               detail: Any = None) -> None:
        """Record one event.  Allocation-free; safe on the hot path."""
        i = self._next
        self._t[i] = t
        self._code[i] = code
        self._op[i] = op_id
        self._kind[i] = kind
        self._peer[i] = peer
        self._detail[i] = detail
        i += 1
        self._next = 0 if i == self.capacity else i
        self.recorded += 1

    def __len__(self) -> int:
        return min(self.recorded, self.capacity)

    def events(self) -> List[Dict[str, Any]]:
        """Live events, oldest first, as JSON-ready dicts."""
        n = len(self)
        if n < self.capacity:
            order = range(n)
        else:  # wrapped: oldest slot is the one about to be overwritten
            start = self._next
            order = [(start + j) % self.capacity for j in range(n)]
        out = []
        for i in order:
            event: Dict[str, Any] = {"t": self._t[i], "event": self._code[i]}
            if self._op[i] is not None:
                event["op_id"] = self._op[i]
            if self._kind[i] is not None:
                event["kind"] = self._kind[i]
            if self._peer[i] is not None:
                event["peer"] = self._peer[i]
            if self._detail[i] is not None:
                event["detail"] = self._detail[i]
            out.append(event)
        return out


class _NullRing:
    """Stand-in ring handed out by a disabled recorder."""

    __slots__ = ("node",)
    capacity = 0
    recorded = 0

    def __init__(self, node: str = ""):
        self.node = node

    def append(self, *args: Any, **kwargs: Any) -> None:
        return None

    def __len__(self) -> int:
        return 0

    def events(self) -> List[Dict[str, Any]]:
        return []


class FlightRecorder:
    """Per-node flight rings plus dump/restore plumbing.

    One recorder lives on each :class:`~repro.obs.hub.Observability`
    hub; instances and the network fetch their ring once at
    construction and append directly to it afterwards.
    """

    def __init__(self, clock: Callable[[], float],
                 capacity: int = DEFAULT_CAPACITY,
                 enabled: Optional[bool] = None):
        if enabled is None:
            enabled = os.environ.get("REPRO_FLIGHT", "") != "off"
        self.clock = clock
        self.capacity = capacity
        self.enabled = enabled
        self.rings: Dict[str, FlightRing] = {}
        self.dumps_taken = 0

    def ring(self, node: str):
        """The (created-on-first-use) ring for *node*."""
        if not self.enabled:
            return _NullRing(node)
        ring = self.rings.get(node)
        if ring is None:
            ring = self.rings[node] = FlightRing(node, self.capacity)
        return ring

    # -- network fast path -------------------------------------------------
    def frame(self, phase: str, message: Any, reason: Any = None) -> None:
        """Record one logical frame event (``send``/``deliver``/``drop``).

        Sends and drops land on the source ring, deliveries on the
        destination ring, mirroring how an operator reasons about each
        node's black box.
        """
        if not self.enabled:
            return
        if phase == "deliver":
            node, peer = message.dst, message.src
        else:
            node, peer = message.src, message.dst
        ring = self.rings.get(node)
        if ring is None:
            ring = self.rings[node] = FlightRing(node, self.capacity)
        payload = message.payload
        op_id = payload.get("op_id") if isinstance(payload, dict) else None
        ring.append(self.clock(), phase, op_id, message.kind, peer, reason)

    # -- dumps -------------------------------------------------------------
    def dump(self, reason: str, detail: Any = None) -> Dict[str, Any]:
        """Snapshot every ring into a replayable JSON-ready black box."""
        self.dumps_taken += 1
        nodes = {}
        for name in sorted(self.rings):
            ring = self.rings[name]
            nodes[name] = {
                "capacity": ring.capacity,
                "recorded": ring.recorded,
                "events": ring.events(),
            }
        return {
            "version": FLIGHT_DUMP_VERSION,
            "reason": reason,
            "time": self.clock(),
            "detail": detail,
            "nodes": nodes,
        }

    def dump_to(self, path: str, reason: str, detail: Any = None) -> str:
        """Write a dump as JSON to *path* and return the path."""
        box = self.dump(reason, detail=detail)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(box, fh, indent=2, sort_keys=True)
            fh.write("\n")
        return path


def dump_to_env_dir(recorder: FlightRecorder, reason: str,
                    detail: Any = None) -> Optional[str]:
    """Write a dump into ``$REPRO_FLIGHT_DIR`` when that is set.

    The shared trigger path for invariant violations and post-crash
    recovery: quietly a no-op when the env var is absent, the recorder
    is disabled, or the directory cannot be written (post-mortem
    capture must never take the run down with it).
    """
    directory = os.environ.get("REPRO_FLIGHT_DIR", "")
    if not directory or not recorder.enabled:
        return None
    slug = "".join(c if c.isalnum() else "-" for c in reason).strip("-")
    name = f"flight-{slug or 'dump'}-{recorder.dumps_taken}.json"
    try:
        os.makedirs(directory, exist_ok=True)
        return recorder.dump_to(os.path.join(directory, name), reason,
                                detail=detail)
    except OSError:
        return None


def load_flight_dump(path: str) -> Dict[str, Any]:
    """Load and minimally validate a flight dump written by ``dump_to``."""
    with open(path, "r", encoding="utf-8") as fh:
        box = json.load(fh)
    if not isinstance(box, dict) or "nodes" not in box:
        raise ValueError(f"{path}: not a flight dump (no 'nodes' section)")
    version = box.get("version")
    if version != FLIGHT_DUMP_VERSION:
        raise ValueError(f"{path}: unsupported flight dump version "
                         f"{version!r}")
    return box


def _event_line(event: Dict[str, Any]) -> str:
    glyph = _GLYPHS.get(event["event"], "?")
    parts = [f"{glyph} t={event['t']:.6f} {event['event']}"]
    if event.get("kind"):
        parts.append(str(event["kind"]))
    if event.get("op_id"):
        parts.append(f"op={event['op_id']}")
    if event.get("peer"):
        parts.append(f"peer={event['peer']}")
    detail = event.get("detail")
    if detail is not None:
        parts.append(f"[{detail}]")
    return " ".join(parts)


def render_flight(box: Dict[str, Any], op_id: Optional[str] = None,
                  last: Optional[int] = None) -> str:
    """Render a dump as a Tracer-style text waterfall.

    With *op_id*, events from every node are merged into a single
    time-ordered lane for that operation; otherwise each node's ring is
    rendered as its own section.  *last* caps the events shown per
    section (post-mortems usually only need the tail).
    """
    lines = [f"flight dump — reason: {box.get('reason', '?')} "
             f"@ t={box.get('time', 0.0):.6f}"]
    detail = box.get("detail")
    if detail is not None:
        lines.append(f"  detail: {json.dumps(detail, sort_keys=True, default=str)}")
    nodes = box.get("nodes", {})
    if op_id is not None:
        merged = []
        for name in sorted(nodes):
            for event in nodes[name]["events"]:
                if event.get("op_id") == op_id:
                    merged.append((event["t"], name, event))
        merged.sort(key=lambda item: item[0])
        if last is not None:
            merged = merged[-last:]
        lines.append(f"op {op_id} ({len(merged)} events)")
        for _, name, event in merged:
            lines.append(f"  {name:<12s} {_event_line(event)}")
        return "\n".join(lines)
    for name in sorted(nodes):
        ring = nodes[name]
        events = ring["events"]
        shown = events if last is None else events[-last:]
        lines.append(f"node {name} — {len(events)} of {ring['recorded']} "
                     f"recorded (capacity {ring['capacity']})")
        for event in shown:
            lines.append(f"  {_event_line(event)}")
    return "\n".join(lines)
