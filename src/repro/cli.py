"""Command-line interface: run the showcase scenarios without writing code.

::

    python -m repro.cli quickstart
    python -m repro.cli demo --nodes 6 --duration 120 --seed 7
    python -m repro.cli compare --systems tiamat,central --nodes 8
    python -m repro.cli trace --seed 3 --loss 0.05 --chrome trace.json
    python -m repro.cli chaos --items 6 --seed 1
    python -m repro.cli chaos --durable --items 8 --seed 1
    python -m repro.cli wal inspect /tmp/chaos-wal/server.wal
    python -m repro.cli overload --clients 8 --duration 12
    python -m repro.cli stats --nodes 8 --duration 30 --format prom
    python -m repro.cli flight dump --loss 0.2 --out flight.json
    python -m repro.cli flight show flight.json --last 40
    python -m repro.cli top --nodes 6 --duration 20 --once

Subcommands:

``quickstart``
    The two-instance walk-through (same content as ``examples/quickstart.py``).
``demo``
    An N-node churning cluster running the request/response workload,
    reporting success rate and communication cost.
``compare``
    The T5-style comparison over any subset of the six systems.
``trace``
    A single distributed ``in`` with the full protocol timeline, the
    per-operation causal span waterfall (``repro.obs``), and optional
    Chrome trace-event JSON export (``--chrome``, Perfetto-loadable).
``chaos``
    A scripted fault scenario — burst loss, duplication, corruption, and a
    server power-cycle — with the trace, drop-reason stats, and
    reliability-sublayer counters printed (demo of ``repro.net.faults``).
    With ``--durable`` the server's space sits on a write-ahead log and the
    power-cycle goes through crash recovery + anti-entropy rejoin
    (``docs/PROTOCOL.md`` section 10) instead of an in-memory snapshot.
``wal``
    Storage tooling: ``wal inspect PATH`` decodes a write-ahead log —
    frame-by-frame records, the embedded snapshot, torn-tail diagnosis,
    and the live entry set a recovery would rebuild.
``overload``
    The T11 goodput-vs-offered-load sweep, uncontrolled vs
    admission-controlled serving side by side: congestion collapse versus
    the shedding plateau (demo of ``repro.core.admission``).
``stats``
    Run the standard workload on a Tiamat cluster and dump the full
    metrics registry (Prometheus text or JSON), optionally with the
    kernel's per-handler profile (``--profile``).
``flight``
    The flight recorder's black boxes (``repro.obs.flight``):
    ``flight dump`` runs a lossy scenario and writes every node's ring
    to JSON; ``flight show PATH`` renders a dump as a per-node (or
    ``--op``-merged) waterfall.
``top``
    In-space cluster telemetry: runs a cluster with leased
    ``("_telemetry", ...)`` health rows enabled and renders the
    collector's ok/degraded/overloaded/partitioned table, on the
    simulator (default) or the real-thread runtime (``--runtime
    threads``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.apps import RequestResponseWorkload
from repro.bench import SYSTEMS, Table, build_system
from repro.core import TiamatConfig, TiamatInstance
from repro.leasing import LeaseTerms, SimpleLeaseRequester
from repro.net import (
    ChurnInjector,
    CorruptPayload,
    CrashRestartInjector,
    DuplicateFrames,
    FaultPlan,
    GilbertElliottLoss,
    Network,
    ProtocolTrace,
)
from repro.sim import Simulator
from repro.tuples import Pattern, Tuple


def cmd_quickstart(args: argparse.Namespace) -> int:
    """Run the quickstart narrative."""
    sim = Simulator(seed=args.seed)
    net = Network(sim)
    a = TiamatInstance(sim, net, "alice")
    b = TiamatInstance(sim, net, "bob")
    net.visibility.set_visible("alice", "bob")
    a.out(Tuple("note", "hello"))
    op = b.in_(Pattern("note", str))
    sim.run(until=10.0)
    print(f"bob consumed {op.result} from {op.source} at t={sim.now:.3f}")
    print(f"network: {net.stats.total_messages} frames, "
          f"{net.stats.total_bytes} bytes")
    return 0


def cmd_demo(args: argparse.Namespace) -> int:
    """Run a churning Tiamat cluster under the standard workload."""
    sim, network, nodes = build_system("tiamat", args.nodes, seed=args.seed,
                                       config=TiamatConfig(
                                           propagate_mode="continuous"))
    churn = ChurnInjector(sim, network.visibility)
    for name in sorted(nodes):
        churn.auto_churn(name, mean_uptime=30.0, mean_downtime=5.0)
    workload = RequestResponseWorkload(sim, nodes, sim.rng("cli"),
                                       period=2.0, op_timeout=8.0)
    workload.start(duration=args.duration)
    sim.run(until=args.duration + 20.0)
    stats = workload.stats
    print(f"{args.nodes} nodes, {args.duration:.0f}s, churn 30s up / 5s down")
    print(f"  produced:  {stats.produced}")
    print(f"  consumed:  {stats.consumed}/{stats.consume_attempts} "
          f"(success rate {stats.success_rate:.2f})")
    print(f"  network:   {network.stats.total_messages} frames, "
          f"{network.stats.total_bytes} bytes")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    """Run the comparison workload over the selected systems."""
    systems = [s.strip() for s in args.systems.split(",") if s.strip()]
    unknown = [s for s in systems if s not in SYSTEMS]
    if unknown:
        print(f"unknown systems: {unknown}; choose from {sorted(SYSTEMS)}",
              file=sys.stderr)
        return 2
    table = Table(f"comparison at {args.nodes} nodes",
                  ["system", "success", "frames/op", "stored/node"])
    for system in systems:
        sim, network, nodes = build_system(system, args.nodes, seed=args.seed)
        sim.run(until=5.0)
        workload = RequestResponseWorkload(sim, nodes, sim.rng("cli"),
                                           period=3.0, op_timeout=8.0)
        before = network.stats.total_messages
        workload.start(duration=args.duration)
        sim.run(until=5.0 + args.duration + 20.0)
        stats = workload.stats
        ops = max(1, stats.produced + stats.consume_attempts)
        frames = network.stats.total_messages - before
        stored = [n.stored_tuples() for n in nodes.values()]
        table.add_row(system, stats.success_rate, frames / ops,
                      sum(stored) / len(stored))
    table.show()
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Print the protocol timeline + causal span tree of one distributed in()."""
    if args.runtime == "threads":
        return _cmd_trace_threads(args)
    sim = Simulator(seed=args.seed)
    net = Network(sim, loss_rate=args.loss)
    a = TiamatInstance(sim, net, "a")
    b = TiamatInstance(sim, net, "b")
    c = TiamatInstance(sim, net, "c")
    net.visibility.connect_clique(["a", "b", "c"])
    trace = ProtocolTrace(net).attach()
    tracer = sim.obs.start_trace(net)
    b.out(Tuple("target", 1))
    c.out(Tuple("target", 2))
    op = a.in_(Pattern("target", int))
    sim.run(until=10.0)
    print(f"a consumed {op.result} from {op.source}\n")
    print(trace.render())
    print(f"\ncausal span tree for {op.op_id}:\n")
    print(tracer.waterfall(op.op_id))
    if args.chrome:
        with open(args.chrome, "w", encoding="utf-8") as fh:
            fh.write(tracer.chrome_trace(op.op_id))
        print(f"\nchrome trace written to {args.chrome} "
              "(load in Perfetto or chrome://tracing)")
    return 0


def _cmd_trace_threads(args: argparse.Namespace) -> int:
    """Trace one blocking take on the real-thread runtime (wall clock)."""
    from repro.runtime.node import ThreadedNodeRegistry, ThreadedTiamatNode

    registry = ThreadedNodeRegistry()
    a = ThreadedTiamatNode(registry, "a")
    b = ThreadedTiamatNode(registry, "b")
    ThreadedTiamatNode(registry, "c")
    for pair in (("a", "b"), ("a", "c"), ("b", "c")):
        registry.set_visible(*pair)
    tracer = registry.obs.start_trace()
    b.out(Tuple("target", 1))
    result = a.in_(Pattern("target", int), timeout=2.0)
    op_id = next(oid for oid in reversed(tracer.op_ids())
                 if oid.startswith("a@"))
    print(f"a consumed {result} (wall-clock timestamps)\n")
    print(tracer.waterfall(op_id))
    if args.chrome:
        with open(args.chrome, "w", encoding="utf-8") as fh:
            fh.write(tracer.chrome_trace(op_id))
        print(f"\nchrome trace written to {args.chrome} "
              "(load in Perfetto or chrome://tracing)")
    return 0


def cmd_flight(args: argparse.Namespace) -> int:
    """Flight-recorder tooling: dump a black box, or render one."""
    from repro.obs.flight import load_flight_dump, render_flight

    if args.flight_command == "show":
        box = load_flight_dump(args.path)
        print(render_flight(box, op_id=args.op, last=args.last))
        return 0

    # flight dump: run a self-contained lossy scenario so the rings have
    # something worth keeping — retransmits, drops, op lifecycles — then
    # write every node's black box to JSON.
    sim = Simulator(seed=args.seed)
    net = Network(sim, loss_rate=args.loss)
    instances = {name: TiamatInstance(sim, net, name)
                 for name in ("a", "b", "c")}
    net.visibility.connect_clique(["a", "b", "c"])
    for i in range(args.ops):
        instances["b" if i % 2 == 0 else "c"].out(Tuple("item", i))
    outcomes: list = []

    def driver():
        client = instances["a"]
        for i in range(args.ops):
            op = client.in_(Pattern("item", i),
                            requester=SimpleLeaseRequester(
                                LeaseTerms(duration=6.0)))
            result = yield op.event
            outcomes.append(result)
            yield sim.timeout(0.3)

    sim.spawn(driver())
    sim.run(until=60.0)
    path = sim.obs.flight.dump_to(
        args.out, "cli", detail={"seed": args.seed, "loss": args.loss})
    satisfied = sum(1 for result in outcomes if result is not None)
    print(f"ran {len(outcomes)} distributed in ops ({satisfied} satisfied) "
          f"at loss={args.loss}")
    print(f"flight dump written to {path}")
    print(f"render it with: python -m repro.cli flight show {path}")
    return 0


def cmd_top(args: argparse.Namespace) -> int:
    """Cluster health table from the in-space telemetry rows."""
    from repro.obs.telemetry import collect_cluster_health, render_top

    if args.runtime == "threads":
        return _cmd_top_threads(args)
    config = TiamatConfig(telemetry_enabled=True)
    sim, network, nodes = build_system("tiamat", args.nodes, seed=args.seed,
                                       config=config)
    sim.run(until=2.0)
    workload = RequestResponseWorkload(sim, nodes, sim.rng("cli"),
                                       period=1.5, op_timeout=6.0)
    workload.start(duration=args.duration)
    spaces = [adapter.instance.space for adapter in nodes.values()]
    expected = sorted(nodes)
    frames = 1 if args.once else max(1, int(args.duration / args.refresh))
    step = args.duration / frames
    for frame in range(frames):
        sim.run(until=sim.now + step)
        health = collect_cluster_health(
            spaces, now=sim.now, period=config.telemetry_period,
            expected=expected)
        if frame:
            print()
        print(render_top(health, sim.now,
                         title=f"sim seed={args.seed}"))
    return 0


def _cmd_top_threads(args: argparse.Namespace) -> int:
    """Cluster health over the real-thread runtime (wall clock)."""
    import time

    from repro.obs.telemetry import render_top
    from repro.runtime.node import ThreadedNodeRegistry, ThreadedTiamatNode

    period = 0.2
    registry = ThreadedNodeRegistry()
    names = [f"n{i}" for i in range(args.nodes)]
    nodes = [ThreadedTiamatNode(registry, name) for name in names]
    for i, left in enumerate(names):
        for right in names[i + 1:]:
            registry.set_visible(left, right)
    for node in nodes:
        node.start_telemetry(period=period)
    try:
        # a dab of traffic so the windowed counters are non-zero
        for i, node in enumerate(nodes):
            node.out(Tuple("warm", i))
            node.rdp(Pattern("warm", int))
        deadline = time.monotonic() + args.duration
        first = True
        while True:
            time.sleep(2 * period)
            health = registry.cluster_health(period=period)
            if not first:
                print()
            first = False
            print(render_top(health, time.monotonic(), title="threads"))
            if args.once or time.monotonic() >= deadline:
                return 0
    finally:
        for node in nodes:
            node.stop_telemetry()


def cmd_stats(args: argparse.Namespace) -> int:
    """Run the standard workload and dump the whole metrics registry."""
    sim, network, nodes = build_system("tiamat", args.nodes, seed=args.seed)
    if args.profile:
        sim.enable_profiling()
    sim.run(until=5.0)
    workload = RequestResponseWorkload(sim, nodes, sim.rng("cli"),
                                       period=2.0, op_timeout=8.0)
    workload.start(duration=args.duration)
    sim.run(until=5.0 + args.duration + 20.0)
    registry = sim.obs.registry
    if args.format == "json":
        print(json.dumps(registry.snapshot(), indent=2, sort_keys=True))
    else:
        print(registry.render_prometheus(), end="")
    return 0


def cmd_perf(args: argparse.Namespace) -> int:
    """Run the micro-ops perf suite and print the metric table.

    The regression gate itself lives in ``benchmarks/perf_baseline.py``
    (which CI runs with ``--check``); this subcommand is the quick local
    view of the same metrics.
    """
    from repro.bench import perf

    baseline = None
    if args.baseline:
        try:
            with open(args.baseline, encoding="utf-8") as fh:
                baseline = json.load(fh)
        except FileNotFoundError:
            print(f"(no baseline at {args.baseline})")
    print(perf.render_table(perf.collect(), baseline))
    return 0


def cmd_overload(args: argparse.Namespace) -> int:
    """Goodput vs offered load: collapse without admission, plateau with.

    Runs the shared T11 scenario (:mod:`repro.bench.overload`) for both
    arms and prints the goodput curve side by side.
    """
    from repro.bench.overload import run_overload_sweep

    multipliers = tuple(float(m) for m in args.multipliers.split(","))
    sweeps = {
        admission: run_overload_sweep(
            args.seed, admission=admission, multipliers=multipliers,
            duration=args.duration, clients=args.clients)
        for admission in (False, True)
    }
    capacity = sweeps[True].capacity
    print(f"server capacity: {capacity:.0f} queries/s "
          f"({args.clients} clients, {args.duration:.0f}s per point)")
    table = Table(
        "goodput vs offered load (queries/s)",
        ["offered (x cap)", "uncontrolled", "admission", "shed", "refusals"])
    for off_point, on_point in zip(sweeps[False].points, sweeps[True].points):
        table.add_row(
            f"{off_point.offered_rate / capacity:.2f}",
            f"{off_point.goodput:.2f}",
            f"{on_point.goodput:.2f}",
            on_point.sheds,
            on_point.refusals_seen,
        )
    print(table.render())
    at2_off = sweeps[False].goodput_at(multipliers[-1])
    at2_on = sweeps[True].goodput_at(multipliers[-1])
    print(f"at {multipliers[-1]:.2f}x capacity: uncontrolled "
          f"{at2_off:.1f} q/s vs admission {at2_on:.1f} q/s")
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    """Scripted fault scenario: chaos vs the reliability sublayer."""
    sim = Simulator(seed=args.seed)
    net = Network(sim)
    plan = FaultPlan([
        GilbertElliottLoss(p_gb=0.05, p_bg=0.5),
        DuplicateFrames(0.1),
        CorruptPayload(0.02),
    ])
    net.use_faults(plan)

    registry: dict = {}

    def factory(name: str) -> TiamatInstance:
        instance = TiamatInstance(sim, net, name)
        for peer in registry:
            if peer != name:
                net.visibility.set_visible(name, peer)
        return instance

    registry["server"] = factory("server")
    registry["client"] = factory("client")
    trace = ProtocolTrace(net).attach()

    backend = wal_dir = None
    if args.durable:
        import tempfile

        from repro.tuples.storage import WALBackend, attach_backend

        wal_dir = tempfile.mkdtemp(prefix="repro-chaos-wal-")
        backend = attach_backend(
            registry["server"].space,
            WALBackend(os.path.join(wal_dir, "server"), compact_every=16))

    for i in range(args.items):
        registry["server"].out(
            Tuple("item", i),
            requester=SimpleLeaseRequester(LeaseTerms(duration=300.0)))

    # Power-cycle the server mid-run: its space round-trips persistence —
    # an in-memory snapshot by default, full WAL crash recovery with the
    # anti-entropy rejoin under --durable.
    if args.durable:
        boom = CrashRestartInjector(sim, registry, factory, durable=True,
                                    backends={"server": backend})
    else:
        boom = CrashRestartInjector(sim, registry, factory)
    boom.power_cycle("server", crash_time=2.0, restart_time=4.0)

    consumed = []

    def consumer():
        client = registry["client"]
        while "server" not in client.comms.plan():
            yield client.comms.discover()
        for i in range(args.items):
            op = client.in_(Pattern("item", i),
                            requester=SimpleLeaseRequester(
                                LeaseTerms(duration=8.0, max_remotes=8)))
            result = yield op.event
            if result is not None:
                consumed.append(i)
            # pace the ops so the power cycle lands mid-run
            yield sim.timeout(0.7)

    sim.spawn(consumer())
    sim.run(until=120.0)

    print(f"chaos: {args.items} destructive in ops under burst loss + "
          "duplication + corruption + a server power-cycle\n")
    print(trace.render())
    print(f"\nconsumed {len(consumed)}/{args.items} items "
          f"(success rate {len(consumed) / max(1, args.items):.2f})")
    print(f"power cycle: crashes={boom.crashes} restarts={boom.restarts} "
          f"tuples restored={boom.tuples_restored} "
          f"reclaimed={boom.tuples_reclaimed}")
    if args.durable:
        print(f"durable recovery: ghosts purged={boom.ghosts_purged} "
              f"wal records out={backend.records_out} "
              f"rm={backend.records_remove} "
              f"compactions={backend.compactions} "
              f"torn truncations={backend.torn_truncations}")
        print(f"wal dir: {wal_dir}")
    print(f"fault plan: {plan.frames_seen} frames judged, "
          f"{plan.frames_dropped} dropped")
    print(net.stats.drop_summary())
    for name in sorted(registry):
        stats = registry[name].reliability.stats()
        print(f"reliability[{name}]: sent={stats['sent']} "
              f"retransmits={stats['retransmits']} acked={stats['acked']} "
              f"dedup-dropped={stats['duplicates_dropped']} "
              f"expired={stats['expired']}")
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    """Schedule-exploration model checking (repro.check)."""
    from repro.check.explorer import Explorer, Perturbations, TEMPLATES
    from repro.check.shrink import CheckReport

    if args.replay:
        report = CheckReport.from_json(args.replay)
        outcome = report.replay(trace=True)
        print(f"replayed {report.template} seed={report.seed} "
              f"max_events={report.min_events}")
        print(f"schedule hash: {outcome.schedule_hash}")
        if outcome.schedule_hash != report.schedule_hash:
            print("WARNING: schedule hash diverged from the report "
                  "(code changed since it was captured?)")
        if outcome.clean:
            print("no violation reproduced")
            return 1
        violation = outcome.first_violation
        print(f"violation reproduced: {violation.oracle} @event "
              f"{violation.event_index}: {violation.detail}")
        return 0

    if args.nightly:
        schedules, label = args.schedules or 10_000, "nightly"
    elif args.smoke:
        schedules, label = args.schedules or 240, "smoke"
    else:
        schedules, label = args.schedules or 240, "custom"
    templates = (args.templates.split(",") if args.templates
                 else sorted(TEMPLATES))
    explorer = Explorer(templates=templates, perturb=Perturbations())
    progress = None
    if not args.quiet:
        every = max(1, schedules // 20)

        def progress(done, total):
            if done % every == 0 or done == total:
                print(f"  explored {done}/{total} schedules", flush=True)

    print(f"repro check [{label}]: {schedules} schedules over "
          f"{len(templates)} templates {templates} (seed base {args.seed})")
    result = explorer.run(schedules=schedules, seed_base=args.seed,
                          progress=progress)
    print(result.summary())
    for report in result.reports:
        print()
        print(report.render())
    return 0 if result.clean else 1


def cmd_wal(args: argparse.Namespace) -> int:
    """Storage tooling: decode a write-ahead log + snapshot pair."""
    from repro.tuples.storage import inspect_wal

    base = args.path
    for ext in (".wal", ".snap"):
        if base.endswith(ext):
            base = base[:-len(ext)]
    info = inspect_wal(base, codec=args.codec, max_records=args.max_records)
    print(f"wal:  {info['wal_path']} ({info['wal_bytes']} bytes, "
          f"{info['wal_records']} records)")
    if info["snapshot_entries"] is None:
        print(f"snap: {info['snap_path']} (absent)")
    else:
        print(f"snap: {info['snap_path']} ({info['snapshot_entries']} "
              f"entries, taken at t={info['snapshot_at']})")
    if info["torn"]:
        print(f"torn tail: {info['torn_bytes']} trailing bytes do not frame "
              "(recovery would truncate them)")
    print(f"live entries after replay: {info['live_entries']}")
    for record in info["records"]:
        if record.get("op") == "out":
            print(f"  out  #{record['id']} at t={record.get('at')} "
                  f"exp={record.get('exp')} tup={record.get('tup')}")
        elif record.get("op") == "rm":
            print(f"  rm   #{record['id']} at t={record.get('at')} "
                  f"why={record.get('why')}")
        else:
            print(f"  {record}")
    shown = len(info["records"])
    if shown < info["wal_records"]:
        print(f"  ... {info['wal_records'] - shown} more records "
              "(raise --max-records)")
    return 0


def cmd_differential(args: argparse.Namespace) -> int:
    """Cross-runtime conformance over scripted workloads."""
    from repro.check.differential import run_differential

    runtimes = tuple(r.strip() for r in args.runtimes.split(",") if r.strip())
    failures = 0
    for seed in range(args.seed, args.seed + args.seeds):
        result = run_differential(seed, steps=args.steps, runtimes=runtimes,
                                  flavor=args.flavor)
        verdict = "agree" if result.agree else "DIVERGE"
        print(f"seed {seed}: {verdict} across {'/'.join(result.transcripts)} "
              f"(consumed {len(result.sim.consumed)} tuples)")
        for mismatch in result.mismatches:
            failures += 1
            print(f"  {mismatch}")
    return 0 if failures == 0 else 1


def cmd_agents(args: argparse.Namespace) -> int:
    """Multi-agent blackboard coordination (the T12 scenario).

    Default mode runs the full T12 comparison
    (:mod:`repro.bench.agents`): the generative blackboard vs a
    centralized master/worker baseline, with and without churn.
    ``--once`` is the CI smoke: one small front-door session
    (:func:`repro.apps.agents.run_handles_session`) on the chosen
    runtime — exit 1 unless every task completed exactly once and the
    ballot decided.
    """
    if args.once:
        from repro.apps.agents import run_handles_session

        result = run_handles_session(args.runtime,
                                     agents=args.agents or 3,
                                     tasks=args.tasks)
        spread = ", ".join(f"{name}={count}"
                           for name, count in sorted(
                               result.completed_by.items()))
        print(f"[{result.runtime}] {result.completed}/{result.tasks} tasks "
              f"completed, {result.duplicates} duplicates, "
              f"decision={result.decision!r}, {result.answers} answers, "
              f"{result.elapsed:.2f}s wall ({spread})")
        ok = result.complete and result.decision is not None
        print("agents smoke OK" if ok else "agents smoke FAILED")
        return 0 if ok else 1

    from repro.bench.agents import AGENTS, CHURN, DURATION, run_t12

    churn = args.churn if args.churn is not None else CHURN
    result = run_t12(args.seed, churn=churn,
                     agents=args.agents or AGENTS,
                     duration=args.duration or DURATION)
    table = Table(
        "T12: blackboard vs centralized master under churn",
        ["arm", "churn", "completed", "goodput (t/s)", "dup", "fairness",
         "consensus", "ttc (s)", "recoveries", "crashes"])
    for point in result.points:
        table.add_row(
            point.arm, f"{point.churn:.0%}", point.completed,
            f"{point.goodput:.2f}", point.duplicates,
            f"{point.fairness:.3f}",
            f"{point.consensus_decided}/{point.consensus_opened}",
            f"{point.consensus_mean:.2f}",
            point.recoveries, point.crashes)
    print(table.render())
    print(f"blackboard keeps {result.blackboard_goodput_ratio:.0%} of "
          f"zero-churn goodput at {churn:.0%} churn "
          f"(central: {result.central_goodput_ratio:.0%}); "
          f"blackboard duplicates: "
          f"{result.blackboard_churn.duplicates} (token-gated), "
          f"central: {result.central_churn.duplicates} (timeout races)")
    return 0


def cmd_aio_echo(args: argparse.Namespace) -> int:
    """Loopback UDP smoke: two aio nodes round-trip real datagrams.

    Builds an :mod:`repro.runtime.aio` cluster on 127.0.0.1 (ephemeral
    ports), echoes ``--count`` tuples off a peer, and performs one remote
    take — proving that sockets, the frame codec, the zero-copy send
    path, and the request/response machinery all work on this host.
    """
    import repro
    from repro.tuples import Pattern, Tuple

    with repro.connect(runtime="aio") as rt:
        ping = rt.node("ping")
        pong = rt.node("pong")
        rt.set_visible("ping", "pong")
        start = time.perf_counter()
        for i in range(args.count):
            echoed = ping.echo(pong.addr, Tuple("echo", i, "payload"))
            if echoed != Tuple("echo", i, "payload"):
                print(f"echo {i} FAILED: got {echoed!r}")
                return 1
        elapsed = time.perf_counter() - start
        pong.out(Tuple("smoke", args.count))
        taken = ping.inp(Pattern("smoke", int))
        stats = ping.stats()
        rate = args.count / elapsed if elapsed > 0 else float("inf")
        print(f"{args.count} echoes over UDP loopback in {elapsed*1e3:.1f} ms "
              f"({rate:,.0f} round-trips/s)")
        print(f"remote take: {taken!r}")
        print(f"frames sent={stats['frames_sent']} "
              f"received={stats['frames_received']} "
              f"retransmits={stats['retransmits']} "
              f"pool={stats['pool']}")
        return 0 if taken == Tuple("smoke", args.count) else 1


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro", description="Tiamat reproduction scenarios")
    parser.add_argument("--seed", type=int, default=0,
                        help="simulation seed (default 0)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("quickstart", help="two-instance walk-through")

    demo = sub.add_parser("demo", help="churning cluster workload")
    demo.add_argument("--nodes", type=int, default=8)
    demo.add_argument("--duration", type=float, default=60.0)

    compare = sub.add_parser("compare", help="multi-system comparison")
    compare.add_argument("--systems", default=",".join(SYSTEMS))
    compare.add_argument("--nodes", type=int, default=8)
    compare.add_argument("--duration", type=float, default=60.0)

    trace = sub.add_parser(
        "trace", help="protocol timeline + span tree of one distributed in()")
    trace.add_argument("--loss", type=float, default=0.0,
                       help="i.i.d. frame loss rate (default 0, sim only)")
    trace.add_argument("--chrome", metavar="PATH", default=None,
                       help="write Chrome trace-event JSON to PATH")
    trace.add_argument("--runtime", choices=("sim", "threads"),
                       default="sim",
                       help="simulated protocol (default) or the "
                            "real-thread runtime with wall-clock spans")

    chaos = sub.add_parser("chaos", help="scripted fault-injection scenario")
    chaos.add_argument("--items", type=int, default=6,
                       help="destructive in ops to run (default 6)")
    chaos.add_argument("--durable", action="store_true",
                       help="back the server's space with a write-ahead "
                            "log; the power-cycle exercises WAL crash "
                            "recovery and the anti-entropy rejoin")

    wal = sub.add_parser("wal", help="write-ahead-log storage tooling")
    wal_sub = wal.add_subparsers(dest="wal_command", required=True)
    wal_inspect = wal_sub.add_parser(
        "inspect", help="decode a WAL + snapshot pair (read-only)")
    wal_inspect.add_argument("path",
                             help="WAL base path (with or without the "
                                  ".wal/.snap extension)")
    wal_inspect.add_argument("--codec", choices=("json", "binary"),
                             default="json",
                             help="record payload codec (default json)")
    wal_inspect.add_argument("--max-records", type=int, default=200,
                             help="record lines to print (default 200)")

    perf = sub.add_parser(
        "perf", help="micro-ops hot-path metrics (codec, scan cache, wire)")
    perf.add_argument("--baseline", default="BENCH_micro.json",
                      help="baseline JSON to diff against "
                           "(default BENCH_micro.json)")

    overload = sub.add_parser(
        "overload",
        help="goodput vs offered load: admission-control ablation (T11)")
    overload.add_argument("--clients", type=int, default=8)
    overload.add_argument("--duration", type=float, default=12.0,
                          help="seconds of offered load per point")
    overload.add_argument("--multipliers", default="0.25,0.5,1.0,1.5,2.0",
                          help="offered load as multiples of capacity")

    stats = sub.add_parser(
        "stats", help="run the standard workload and dump the metrics registry")
    stats.add_argument("--nodes", type=int, default=8)
    stats.add_argument("--duration", type=float, default=30.0)
    stats.add_argument("--format", choices=("prom", "json"), default="prom",
                       help="output format (default prom)")
    stats.add_argument("--profile", action="store_true",
                       help="enable the kernel's per-handler profiler")

    check = sub.add_parser(
        "check",
        help="schedule-exploration model checker (invariant oracles)")
    mode = check.add_mutually_exclusive_group()
    mode.add_argument("--smoke", action="store_true",
                      help="CI tier-1 budget (240 schedules)")
    mode.add_argument("--nightly", action="store_true",
                      help="nightly budget (10000 schedules)")
    check.add_argument("--schedules", type=int, default=None,
                       help="override the schedule budget")
    check.add_argument("--templates", default=None,
                       help="comma-separated scenario templates "
                            "(default: all)")
    check.add_argument("--replay", default=None, metavar="REPORT_JSON",
                       help="replay a CheckReport JSON blob instead of "
                            "exploring")
    check.add_argument("--quiet", action="store_true",
                       help="suppress progress lines")

    flight = sub.add_parser(
        "flight", help="flight-recorder black boxes (dump + waterfall)")
    flight_sub = flight.add_subparsers(dest="flight_command", required=True)
    flight_dump = flight_sub.add_parser(
        "dump", help="run a lossy scenario and dump every node's ring")
    flight_dump.add_argument("--out", default="flight.json",
                             help="dump path (default flight.json)")
    flight_dump.add_argument("--loss", type=float, default=0.15,
                             help="i.i.d. frame loss rate (default 0.15)")
    flight_dump.add_argument("--ops", type=int, default=8,
                             help="distributed in ops to run (default 8)")
    flight_show = flight_sub.add_parser(
        "show", help="render a flight dump as a text waterfall")
    flight_show.add_argument("path", help="flight dump JSON path")
    flight_show.add_argument("--op", default=None, metavar="OP_ID",
                             help="merge all nodes' events for one op id")
    flight_show.add_argument("--last", type=int, default=None, metavar="N",
                             help="show only the last N events per section")

    top = sub.add_parser(
        "top", help="cluster health from the in-space telemetry rows")
    top.add_argument("--nodes", type=int, default=6)
    top.add_argument("--duration", type=float, default=20.0,
                     help="run length in (sim or wall) seconds (default 20)")
    top.add_argument("--refresh", type=float, default=5.0,
                     help="seconds between table redraws (default 5)")
    top.add_argument("--once", action="store_true",
                     help="print a single table and exit")
    top.add_argument("--runtime", choices=("sim", "threads"), default="sim",
                     help="simulated cluster (default) or real threads")

    differential = sub.add_parser(
        "differential",
        help="cross-runtime conformance (scripted workloads)")
    differential.add_argument("--seeds", type=int, default=5,
                              help="number of seeds to run (default 5)")
    differential.add_argument("--steps", type=int, default=40,
                              help="workload steps per seed (default 40)")
    differential.add_argument(
        "--runtimes", default="sim,threaded",
        help="comma-separated runtimes to compare against sim "
             "(default sim,threaded; full check: sim,threaded,aio)")
    differential.add_argument(
        "--flavor", choices=("classic", "agents"), default="classic",
        help="workload flavor: classic tuple soup or the agent "
             "blackboard vocabulary (default classic)")

    agents = sub.add_parser(
        "agents",
        help="multi-agent blackboard vs centralized master (T12)")
    agents.add_argument("--once", action="store_true",
                        help="CI smoke: one front-door session, exit 1 "
                             "unless complete and exactly-once")
    agents.add_argument("--runtime", choices=("sim", "threads", "aio"),
                        default="sim",
                        help="runtime for --once (default sim)")
    agents.add_argument("--agents", type=int, default=None,
                        help="worker count (default 3 for --once, 6 full)")
    agents.add_argument("--tasks", type=int, default=8,
                        help="tasks for --once (default 8)")
    agents.add_argument("--duration", type=float, default=None,
                        help="virtual seconds per full-mode point "
                             "(default 24)")
    agents.add_argument("--churn", type=float, default=None,
                        help="target downtime fraction for the churn "
                             "arms (default 0.2)")

    aio_echo = sub.add_parser(
        "aio-echo",
        help="UDP loopback smoke for the asyncio runtime")
    aio_echo.add_argument("--count", type=int, default=100,
                          help="echo round-trips to perform (default 100)")
    return parser


_COMMANDS = {
    "quickstart": cmd_quickstart,
    "demo": cmd_demo,
    "compare": cmd_compare,
    "trace": cmd_trace,
    "chaos": cmd_chaos,
    "overload": cmd_overload,
    "stats": cmd_stats,
    "perf": cmd_perf,
    "check": cmd_check,
    "differential": cmd_differential,
    "agents": cmd_agents,
    "aio-echo": cmd_aio_echo,
    "wal": cmd_wal,
    "flight": cmd_flight,
    "top": cmd_top,
}


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
