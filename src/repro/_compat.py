"""Backward-compatibility helpers for the keyword-only API migration.

PR 4 moves every *optional* constructor parameter of the public surface
(:class:`~repro.core.instance.TiamatInstance`,
:class:`~repro.net.network.Network`,
:class:`~repro.runtime.node.ThreadedTiamatNode`) behind ``*``: required
identity arguments stay positional, everything tunable must be named.
Old call sites that passed optionals positionally keep working for one
deprecation cycle through :func:`absorb_positional`, which maps the legacy
positional tail onto the keyword parameters and emits a
:class:`DeprecationWarning` naming the rewrite.

The deprecation policy itself is documented in ``docs/API.md``.
"""

from __future__ import annotations

import warnings
from typing import Any, Mapping


def absorb_positional(cls_name: str, args: tuple,
                      defaults: Mapping[str, Any],
                      received: Mapping[str, Any]) -> dict:
    """Map a legacy positional tail onto keyword-only parameters.

    ``defaults`` is an *ordered* mapping of parameter name -> default value
    (the order defines what each positional slot used to mean);
    ``received`` holds the values actually bound via keywords.  Returns the
    merged values.  Raises :class:`TypeError` for excess positionals or a
    parameter supplied both ways, mirroring normal call semantics.
    """
    merged = dict(received)
    if not args:
        return merged
    names = list(defaults)
    if len(args) > len(names):
        raise TypeError(
            f"{cls_name}() takes at most {len(names)} optional positional "
            f"arguments ({len(args)} given)")
    absorbed = names[:len(args)]
    warnings.warn(
        f"passing {', '.join(absorbed)} to {cls_name}() positionally is "
        f"deprecated and will become an error; pass "
        f"{'it' if len(absorbed) == 1 else 'them'} by keyword instead",
        DeprecationWarning, stacklevel=3)
    for name, value in zip(names, args):
        if merged[name] != defaults[name]:
            raise TypeError(
                f"{cls_name}() got multiple values for argument {name!r}")
        merged[name] = value
    return merged
