"""Message delivery over the visibility graph.

The network is deliberately simple — the phenomena the paper cares about
(devices coming and going, operations racing visibility changes) come from
the dynamics of the :class:`~repro.net.visibility.VisibilityGraph`, not from
an elaborate radio model:

* **unicast** delivers to a named node iff the two are mutually visible at
  *send* time, after a latency drawn from the latency model and subject to
  probabilistic loss;
* **multicast** delivers an independent copy to each currently visible
  neighbour (the discovery primitive of the paper's prototype);
* visibility is *not* re-checked at delivery time: a frame already in
  flight arrives even if the nodes separate mid-flight, matching the
  behaviour of real radios at these timescales.  Frames addressed to a node
  that is *down* at delivery time are dropped.

Two hot-path options keep heavy workloads cheap (both off by default so
seeded experiments are unperturbed unless requested):

* ``codec`` selects the wire encoding that prices every frame —
  ``"json"`` (the default) or the compact ``"binary"`` codec
  (:mod:`repro.tuples.serialization`);
* ``batching`` coalesces every unicast frame queued to the same
  destination within one simulation tick into a single **batch envelope**
  (one latency/loss/fault decision, one stats entry), unpacked at delivery
  in queue order so per-destination FIFO ordering — and, with the codec
  fixed, operation outcomes — are preserved (see
  ``tests/test_perf_paths.py``).  Frame listeners observe the *logical*
  frames on both ends, so tracing stays causally exact.

Richer failure modes — burst loss, duplication, reordering, corruption,
one-way links — are layered on via :meth:`Network.use_faults` and a
:class:`~repro.net.faults.FaultPlan`; the base network stays the simple
i.i.d. model so seeded experiments are unperturbed unless a plan is
installed.  Every drop is attributed to a reason in
:class:`~repro.net.stats.NetworkStats`, and an optional ``drop listener``
lets tracers record the dropped frames themselves.

Handlers attached via :meth:`Network.attach` are invoked with the delivered
:class:`~repro.net.message.Message`.
"""

from __future__ import annotations

from typing import Callable, Optional, Union

from repro._compat import absorb_positional
from repro.errors import UnknownNodeError
from repro.net.message import BATCH, Message
from repro.net.stats import (
    DROP_CORRUPT,
    DROP_INVISIBLE,
    DROP_LOSS,
    DROP_NODE_DOWN,
    NetworkStats,
)
from repro.net.visibility import VisibilityGraph
from repro.sim.kernel import Simulator
from repro.tuples.serialization import WireCodec, get_codec

Handler = Callable[[Message], None]
LatencyModel = Callable[[str, str, int], float]
DropListener = Callable[[Message, str], None]
FrameListener = Callable[[str, Message], None]


def default_latency(base: float = 0.002, per_byte: float = 2e-7,
                    jitter: float = 0.3) -> Callable[["Network"], LatencyModel]:
    """A latency model factory: base + size*per_byte, with multiplicative jitter.

    Defaults approximate a local wireless hop (about 2 ms plus bandwidth
    delay).  The returned factory binds the network's RNG stream so jitter
    is reproducible.
    """

    def bind(network: "Network") -> LatencyModel:
        rng = network.sim.rng("net/latency")

        def model(src: str, dst: str, size: int) -> float:
            scale = 1.0 + jitter * rng.random()
            return (base + size * per_byte) * scale

        return model

    return bind


class NetworkInterface:
    """A node's handle on the network: send primitives bound to its name."""

    __slots__ = ("network", "name")

    def __init__(self, network: "Network", name: str) -> None:
        self.network = network
        self.name = name

    def unicast(self, dst: str, payload: dict) -> bool:
        """Send to a specific node; False if it was not visible at send time."""
        return self.network.unicast(self.name, dst, payload)

    def multicast(self, payload: dict) -> int:
        """Send to every visible neighbour; returns the copy count."""
        return self.network.multicast(self.name, payload)

    def neighbors(self) -> list[str]:
        """Nodes currently visible from this one."""
        return self.network.visibility.neighbors(self.name)

    def is_visible(self, other: str) -> bool:
        """Whether ``other`` is currently reachable in one hop."""
        return self.network.visibility.visible(self.name, other)


class Network:
    """The simulated datagram network over a visibility graph.

    Only ``sim`` is positional; every tunable is keyword-only.  Legacy
    positional calls are absorbed for one deprecation cycle (see
    :mod:`repro._compat` and ``docs/API.md``).
    """

    #: Legacy positional order of the optional parameters (pre-PR-4 API).
    _LEGACY_OPTIONALS: dict = {
        "visibility": None, "loss_rate": 0.0, "latency_factory": None,
        "codec": None, "batching": False,
    }

    def __init__(self, sim: Simulator, *args,
                 visibility: Optional[VisibilityGraph] = None,
                 loss_rate: float = 0.0,
                 latency_factory: Optional[Callable[["Network"], LatencyModel]] = None,
                 codec: Union[str, WireCodec, None] = None,
                 batching: bool = False) -> None:
        if args:
            merged = absorb_positional(
                "Network", args, self._LEGACY_OPTIONALS,
                {"visibility": visibility, "loss_rate": loss_rate,
                 "latency_factory": latency_factory, "codec": codec,
                 "batching": batching})
            visibility = merged["visibility"]
            loss_rate = merged["loss_rate"]
            latency_factory = merged["latency_factory"]
            codec = merged["codec"]
            batching = merged["batching"]
        self.sim = sim
        self.visibility = visibility if visibility is not None else VisibilityGraph()
        self.loss_rate = loss_rate
        self.codec: WireCodec = get_codec(codec)
        self.batching = batching
        self.stats = NetworkStats()
        self.faults = None  # Optional[FaultPlan]
        self._handlers: dict[str, Handler] = {}
        self._loss_rng = sim.rng("net/loss")
        self._drop_listeners: list[DropListener] = []
        self._frame_listeners: list[FrameListener] = []
        # (src, dst) -> logical frames queued this tick, awaiting a flush
        self._batch_queues: dict[tuple, list[Message]] = {}
        # batching statistics (physical envelopes vs logical frames coalesced)
        self.batch_envelopes = 0
        self.batched_frames = 0
        factory = latency_factory if latency_factory is not None else default_latency()
        self._latency: LatencyModel = factory(self)
        sim.obs.observe_network(self)
        # The always-on flight recorder (repro.obs.flight): sends/drops
        # land on the source node's ring, deliveries on the destination's.
        self._flight = sim.obs.flight

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------
    def attach(self, name: str, handler: Handler) -> NetworkInterface:
        """Register a node and its delivery handler; returns its interface."""
        if name in self._handlers:
            raise UnknownNodeError(f"node {name!r} already attached")
        self._handlers[name] = handler
        self.visibility.add_node(name)
        # A re-attaching node (crash + restart) comes back powered up.
        self.visibility.set_up(name, True)
        return NetworkInterface(self, name)

    def detach(self, name: str) -> None:
        """Remove a node entirely (edges cleared, frames to it dropped)."""
        self._handlers.pop(name, None)
        self.visibility.isolate(name)
        self.visibility.set_up(name, False)

    # ------------------------------------------------------------------
    # Fault injection and drop observation
    # ------------------------------------------------------------------
    def use_faults(self, plan) -> "Network":
        """Install (or clear, with ``None``) a fault plan; returns self."""
        self.faults = plan
        if plan is not None:
            plan.bind(self)
        return self

    def on_drop(self, listener: DropListener) -> Callable[[], None]:
        """Subscribe to dropped frames; returns an unsubscribe callable."""
        self._drop_listeners.append(listener)
        return lambda: self._drop_listeners.remove(listener)

    def on_frame(self, listener: FrameListener) -> Callable[[], None]:
        """Subscribe to frame lifecycle events; returns an unsubscriber.

        The listener is invoked as ``listener(phase, message)`` with phase
        ``"send"`` (one call per in-flight copy, i.e. per destination for
        multicasts) and ``"deliver"`` (the frame reached its handler).
        On a batching network, listeners see the *logical* frames — one
        ``send`` per queued frame, one ``deliver`` per unpacked sub-frame —
        never the envelope, so causal tracing is unaffected by coalescing.
        Drops are reported through :meth:`on_drop`.  With no listeners the
        notification is a single falsy check — observationally free.
        """
        self._frame_listeners.append(listener)
        return lambda: self._frame_listeners.remove(listener)

    def _notify_frame(self, phase: str, message: Message) -> None:
        for listener in list(self._frame_listeners):
            listener(phase, message)

    def _drop(self, message: Message, reason: str) -> None:
        self.stats.record_drop(message.src, reason=reason)
        flight = self._flight
        if not self._drop_listeners and not flight.enabled:
            return
        frames = message.payload.get("frames") if message.is_batch else None
        if frames:
            # Report the logical frames the envelope carried, not the
            # envelope itself: tracers reason about per-operation frames.
            for payload in frames:
                sub = Message.sub_frame(message, payload)
                flight.frame("drop", sub, reason)
                for listener in list(self._drop_listeners):
                    listener(sub, reason)
            return
        # Plain frame — or a batch envelope damaged beyond recognition
        # (corruption garbles the payload, so the logical frames are
        # unrecoverable): report the physical frame once.
        flight.frame("drop", message, reason)
        for listener in list(self._drop_listeners):
            listener(message, reason)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def unicast(self, src: str, dst: str, payload: dict) -> bool:
        """Deliver ``payload`` from src to dst if visible; True if dispatched."""
        self._require(src)
        message = Message(src, dst, payload, self.sim.now, codec=self.codec)
        if not self.visibility.visible(src, dst):
            self._drop(message, DROP_INVISIBLE)
            return False
        if self.batching:
            return self._enqueue(message)
        self.stats.record_send(src, message.size, multicast=False, kind=message.kind)
        self._dispatch(message)
        return True  # dispatched (even if lost in flight)

    def multicast(self, src: str, payload: dict) -> int:
        """Deliver a copy of ``payload`` to each visible neighbour of src."""
        self._require(src)
        neighbors = self.visibility.neighbors(src)
        probe = Message(src, None, payload, self.sim.now, codec=self.codec)
        self.stats.record_send(src, probe.size, multicast=True, kind=probe.kind)
        dispatched = 0
        for dst in neighbors:
            copy = probe.copy_for(dst, self.sim.now)
            if self._dispatch(copy):
                dispatched += 1
        return dispatched

    # ------------------------------------------------------------------
    # Frame batching
    # ------------------------------------------------------------------
    def _enqueue(self, message: Message) -> bool:
        """Queue a unicast frame for this tick's flush to its destination."""
        key = (message.src, message.dst)
        queue = self._batch_queues.get(key)
        if queue is None:
            queue = self._batch_queues[key] = []
            # End-of-tick flush: same virtual time, after every handler
            # that is already scheduled for this instant has run, so all
            # same-tick frames to this destination coalesce.
            self.sim.schedule(0.0, self._flush_batch, key)
        queue.append(message)
        if self._frame_listeners:
            self._notify_frame("send", message)
        self._flight.frame("send", message)
        return True

    def _flush_batch(self, key: tuple) -> None:
        queue = self._batch_queues.pop(key, None)
        if not queue:
            return
        src, dst = key
        if src not in self._handlers:
            # The sender detached (crash/shutdown) with frames still in its
            # TX queue; they die with it.
            for message in queue:
                self._drop(message, DROP_NODE_DOWN)
            return
        if len(queue) == 1:
            message = queue[0]
        else:
            message = Message(src, dst,
                              {"kind": BATCH,
                               "frames": [m.payload for m in queue]},
                              self.sim.now, codec=self.codec)
            self.batch_envelopes += 1
            self.batched_frames += len(queue)
        self.stats.record_send(src, message.size, multicast=False,
                               kind=message.kind)
        self._dispatch(message, notify=False)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _dispatch(self, message: Message, notify: bool = True) -> bool:
        """Run loss + fault decisions for one frame; True if any copy flies.

        ``notify`` is False for frames whose ``send`` notification already
        happened at enqueue time (the batching path).
        """
        if notify:
            if self._frame_listeners:
                self._notify_frame("send", message)
            self._flight.frame("send", message)
        if self._lost():
            self._drop(message, DROP_LOSS)
            return False  # silently lost in flight
        if self.faults is None:
            self._schedule_delivery(message, 0.0)
            return True
        verdict = self.faults.judge(message)
        if verdict.dropped:
            self._drop(message, verdict.drop_reason)
            return False
        first = True
        for delivery in verdict.deliveries:
            copy = message if first else message.copy_for(message.dst,
                                                          message.sent_at)
            first = False
            if delivery.corrupt:
                copy.corrupt()
            self._schedule_delivery(copy, delivery.extra_delay)
        return True

    def _schedule_delivery(self, message: Message, extra_delay: float) -> None:
        delay = self._latency(message.src, message.dst, message.size)
        self.sim.schedule(delay + extra_delay, self._deliver, message)

    def _deliver(self, message: Message) -> None:
        handler = self._handlers.get(message.dst)
        if handler is None or not self.visibility.is_up(message.dst):
            self._drop(message, DROP_NODE_DOWN)
            return
        if ((self.faults is not None or message.is_batch)
                and not message.verify()):
            # The receiver's frame checksum rejects damaged payloads.
            # Batch envelopes are always checked — a damaged envelope must
            # drop every logical frame it carried, never half-deliver.
            self._drop(message, DROP_CORRUPT)
            return
        self.stats.record_receive(message.dst, message.size)
        if message.is_batch:
            # Unpack in queue order: per-destination FIFO is preserved.
            for payload in message.payload.get("frames", ()):
                sub = Message.sub_frame(message, payload)
                if self._frame_listeners:
                    self._notify_frame("deliver", sub)
                self._flight.frame("deliver", sub)
                handler(sub)
            return
        if self._frame_listeners:
            self._notify_frame("deliver", message)
        self._flight.frame("deliver", message)
        handler(message)

    def _lost(self) -> bool:
        return self.loss_rate > 0 and self._loss_rng.random() < self.loss_rate

    def _require(self, name: str) -> None:
        if name not in self._handlers:
            raise UnknownNodeError(f"node {name!r} is not attached to this network")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Network nodes={len(self._handlers)} loss={self.loss_rate}>"
