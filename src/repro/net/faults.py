"""Composable fault injection for the simulated network.

The base :class:`~repro.net.network.Network` models only uniform i.i.d.
loss; real broadcast media fail in richer ways — bursts, duplicated frames,
reordering, bit damage, asymmetric links, and whole devices power-cycling.
This module layers those behaviours over ``Network.unicast``/``multicast``
without touching protocol code: a :class:`FaultPlan` holds an ordered list
of injectors, each scoped to a link, a node, or the whole network, and the
network consults the plan once per frame.

Injectors

* :class:`RandomLoss` — extra i.i.d. loss on a scope.
* :class:`GilbertElliottLoss` — the classic two-state (good/bad) Markov
  burst-loss model; the chain steps once per matched frame.
* :class:`DuplicateFrames` — delivers N copies of a frame (each with its own
  latency draw), modelling link-layer retransmit duplicates.
* :class:`ReorderFrames` — adds a bounded random extra delay to a frame so
  it can overtake (or be overtaken by) its neighbours.
* :class:`CorruptPayload` — damages the frame in flight; the receiver's
  checksum catches it and the network drops it (reason ``corrupt``).
* :class:`OneWayLink` — drops every frame in one direction of a link,
  modelling asymmetric radio reach.

Whole-node **crash + restart** is a different beast: it must round-trip an
instance through :mod:`repro.tuples.persistence` (the paper's §2.4
power-cycle story).  :class:`CrashRestartInjector` snapshots the victim's
space, detaches it, and later builds a replacement instance and restores
the snapshot — charging the downtime against every tuple's remaining lease
so expired tuples are reclaimed rather than resurrected.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.net.message import Message
from repro.net.stats import DROP_FAULT
from repro.sim.rng import RngStream


class Delivery:
    """One planned delivery of a frame copy."""

    __slots__ = ("extra_delay", "corrupt")

    def __init__(self, extra_delay: float = 0.0, corrupt: bool = False) -> None:
        self.extra_delay = extra_delay
        self.corrupt = corrupt


class Verdict:
    """What the fault plan decided for one frame.

    Either the frame is dropped (``drop_reason`` set) or it is delivered as
    one or more :class:`Delivery` copies, each possibly delayed or damaged.
    """

    __slots__ = ("drop_reason", "deliveries")

    def __init__(self) -> None:
        self.drop_reason: Optional[str] = None
        self.deliveries: list[Delivery] = [Delivery()]

    @property
    def dropped(self) -> bool:
        return self.drop_reason is not None

    def drop(self, reason: str = DROP_FAULT) -> None:
        self.drop_reason = reason
        self.deliveries = []


class FaultInjector:
    """Base class: a scoped, per-frame fault behaviour.

    Scope selectors (all optional, AND-ed together):

    ``src`` / ``dst``
        only frames originated by / addressed to the named node;
    ``link``
        an (a, b) pair — frames in either direction between a and b;
    ``kinds``
        only frames whose payload ``kind`` is in the given set.
    """

    def __init__(self, src: Optional[str] = None, dst: Optional[str] = None,
                 link: Optional[tuple] = None,
                 kinds: Optional[frozenset] = None) -> None:
        self.src = src
        self.dst = dst
        self.link = frozenset(link) if link is not None else None
        self.kinds = frozenset(kinds) if kinds is not None else None
        self.matched = 0

    def matches(self, msg: Message) -> bool:
        if self.src is not None and msg.src != self.src:
            return False
        if self.dst is not None and msg.dst != self.dst:
            return False
        if self.link is not None and {msg.src, msg.dst} != self.link:
            return False
        if self.kinds is not None and msg.kind not in self.kinds:
            return False
        return True

    def apply(self, verdict: Verdict, msg: Message, rng: RngStream) -> None:
        raise NotImplementedError


class RandomLoss(FaultInjector):
    """Extra i.i.d. loss at ``rate`` on the scope."""

    def __init__(self, rate: float, **scope) -> None:
        super().__init__(**scope)
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"loss rate out of range: {rate}")
        self.rate = rate

    def apply(self, verdict: Verdict, msg: Message, rng: RngStream) -> None:
        if rng.random() < self.rate:
            verdict.drop()


class GilbertElliottLoss(FaultInjector):
    """Two-state Markov burst loss (Gilbert–Elliott).

    The chain starts *good* and steps once per matched frame:
    good → bad with probability ``p_gb``, bad → good with ``p_bg``.
    Frames are lost with ``loss_good`` in the good state (usually 0) and
    ``loss_bad`` in the bad state (usually 1): long loss bursts with
    expected length ``1/p_bg`` frames.
    """

    def __init__(self, p_gb: float = 0.05, p_bg: float = 0.25,
                 loss_good: float = 0.0, loss_bad: float = 1.0,
                 **scope) -> None:
        super().__init__(**scope)
        for name, p in (("p_gb", p_gb), ("p_bg", p_bg),
                        ("loss_good", loss_good), ("loss_bad", loss_bad)):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} out of range: {p}")
        self.p_gb = p_gb
        self.p_bg = p_bg
        self.loss_good = loss_good
        self.loss_bad = loss_bad
        self.bad = False
        self.bursts = 0

    def apply(self, verdict: Verdict, msg: Message, rng: RngStream) -> None:
        if self.bad:
            if rng.random() < self.p_bg:
                self.bad = False
        elif rng.random() < self.p_gb:
            self.bad = True
            self.bursts += 1
        loss = self.loss_bad if self.bad else self.loss_good
        if loss > 0 and rng.random() < loss:
            verdict.drop()


class DuplicateFrames(FaultInjector):
    """With probability ``prob``, deliver ``copies`` total copies."""

    def __init__(self, prob: float, copies: int = 2, **scope) -> None:
        super().__init__(**scope)
        if copies < 2:
            raise ValueError("copies must be >= 2")
        self.prob = prob
        self.copies = copies
        self.duplicated = 0

    def apply(self, verdict: Verdict, msg: Message, rng: RngStream) -> None:
        if verdict.deliveries and rng.random() < self.prob:
            self.duplicated += 1
            for _ in range(self.copies - 1):
                verdict.deliveries.append(Delivery())


class ReorderFrames(FaultInjector):
    """With probability ``prob``, delay a frame by up to ``max_extra_delay``.

    Delayed frames can be overtaken by later sends — bounded reordering
    (the bound keeps retransmission analysis tractable).
    """

    def __init__(self, prob: float, max_extra_delay: float = 0.1,
                 **scope) -> None:
        super().__init__(**scope)
        if max_extra_delay < 0:
            raise ValueError("max_extra_delay must be >= 0")
        self.prob = prob
        self.max_extra_delay = max_extra_delay
        self.reordered = 0

    def apply(self, verdict: Verdict, msg: Message, rng: RngStream) -> None:
        for delivery in verdict.deliveries:
            if rng.random() < self.prob:
                self.reordered += 1
                delivery.extra_delay += rng.random() * self.max_extra_delay


class CorruptPayload(FaultInjector):
    """With probability ``prob``, damage a frame copy in flight."""

    def __init__(self, prob: float, **scope) -> None:
        super().__init__(**scope)
        self.prob = prob
        self.corrupted = 0

    def apply(self, verdict: Verdict, msg: Message, rng: RngStream) -> None:
        for delivery in verdict.deliveries:
            if not delivery.corrupt and rng.random() < self.prob:
                self.corrupted += 1
                delivery.corrupt = True


class OneWayLink(FaultInjector):
    """Drop every frame travelling ``src`` → ``dst`` (reverse unaffected)."""

    def __init__(self, src: str, dst: str,
                 kinds: Optional[frozenset] = None) -> None:
        super().__init__(src=src, dst=dst, kinds=kinds)

    def apply(self, verdict: Verdict, msg: Message, rng: RngStream) -> None:
        verdict.drop()


class FaultPlan:
    """An ordered, composable set of fault injectors for one network.

    Install with ``network.use_faults(plan)``.  Injectors run in insertion
    order; a drop verdict short-circuits the rest.  The plan draws from its
    own named RNG stream so enabling faults never perturbs the randomness
    consumed elsewhere in a seeded run.
    """

    def __init__(self, injectors: Optional[list] = None) -> None:
        self.injectors: list[FaultInjector] = list(injectors or [])
        self.rng: Optional[RngStream] = None
        self.frames_seen = 0
        self.frames_dropped = 0

    def add(self, injector: FaultInjector) -> "FaultPlan":
        """Append an injector; returns self for chaining."""
        self.injectors.append(injector)
        return self

    def bind(self, network) -> None:
        """Called by the network when the plan is installed."""
        if self.rng is None:
            self.rng = network.sim.rng("net/faults")

    def judge(self, msg: Message) -> Verdict:
        """Run every matching injector over one frame."""
        self.frames_seen += 1
        verdict = Verdict()
        for injector in self.injectors:
            if verdict.dropped:
                break
            if injector.matches(msg):
                injector.matched += 1
                injector.apply(verdict, msg, self.rng)
        if verdict.dropped:
            self.frames_dropped += 1
        return verdict

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<FaultPlan injectors={len(self.injectors)} "
                f"seen={self.frames_seen} dropped={self.frames_dropped}>")


class CrashRestartInjector:
    """Scheduled crash + restart of Tiamat instances through persistence.

    The injector owns a registry mapping node name → live instance (the
    same dict the experiment uses, so lookups always find the current
    incarnation) and a ``factory(name)`` callable that builds and attaches
    a replacement instance.

    On **crash**: the victim's space is snapshotted
    (:func:`repro.tuples.persistence.snapshot_space` — held two-phase
    entries deliberately excluded), the instance is shut down (detached
    from the network, retransmit timers cancelled), and the node is marked
    down.  In-flight operations *against* the victim terminate via their
    lease deadlines; nothing wedges.

    On **restart**: a fresh instance is built, the snapshot's remaining
    lease times are charged with the downtime (``charge_downtime=True``,
    the default), entries whose leases expired while the device was off are
    reclaimed instead of restored, and the survivors are deposited into the
    new space re-anchored to the restart clock.

    **Durable mode** (``durable=True`` plus a ``backends`` dict mapping
    node name → :class:`~repro.tuples.storage.base.StorageBackend`)
    models real process death instead of a polite power-down: no snapshot
    is taken at crash time — whatever the victim's backend had durably
    recorded *before* the crash is all that survives.  The restart goes
    through :meth:`TiamatInstance.recover_from`: lease-aware replay, id
    high-watering, and (``sync_on_restart``, default on) the anti-entropy
    rejoin that purges tuples consumed remotely during the downtime.
    """

    def __init__(self, sim, registry: dict,
                 factory: Callable[[str], object],
                 charge_downtime: bool = True,
                 durable: bool = False,
                 backends: Optional[dict] = None,
                 sync_on_restart: bool = True,
                 sync_timeout: Optional[float] = None) -> None:
        if durable and not backends:
            raise ValueError("durable mode needs a backends dict "
                             "(node name -> StorageBackend)")
        self.sim = sim
        self.registry = registry
        self.factory = factory
        self.charge_downtime = charge_downtime
        self.durable = durable
        self.backends = backends if backends is not None else {}
        self.sync_on_restart = sync_on_restart
        self.sync_timeout = sync_timeout
        self._snapshots: dict[str, tuple] = {}
        self._crash_times: dict[str, float] = {}
        self._recovered: list = []
        self.crashes = 0
        self.restarts = 0
        self.tuples_restored = 0
        self.tuples_reclaimed = 0

    @property
    def ghosts_purged(self) -> int:
        """Tuples purged by anti-entropy rejoin across every incarnation.

        Purges land asynchronously (when SYNC_RESPONSEs arrive), so this
        sums the live counters of every instance this injector recovered
        rather than sampling at restart time.
        """
        return sum(inst.ghosts_purged for inst in self._recovered)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def crash_at(self, name: str, time: float) -> None:
        """Crash ``name`` at the given absolute virtual time."""
        self.sim.schedule_at(time, self.crash, name)

    def restart_at(self, name: str, time: float) -> None:
        """Restart ``name`` at the given absolute virtual time."""
        self.sim.schedule_at(time, self.restart, name)

    def power_cycle(self, name: str, crash_time: float,
                    restart_time: float) -> None:
        """Schedule a crash followed by a restart."""
        if restart_time <= crash_time:
            raise ValueError("restart must come after crash")
        self.crash_at(name, crash_time)
        self.restart_at(name, restart_time)

    # ------------------------------------------------------------------
    # Immediate control
    # ------------------------------------------------------------------
    def crash(self, name: str) -> None:
        """Take the instance down now.

        In snapshot mode the space is snapshotted first (a polite
        power-down); in durable mode nothing is — the process dies with
        whatever its backend already made durable, and the backend is
        detached so stale timers from the dead incarnation can no longer
        log.
        """
        from repro.tuples.persistence import snapshot_space

        instance = self.registry.get(name)
        if instance is None:
            return
        if self.durable:
            backend = self.backends.get(name)
            if backend is not None:
                backend.detach()
            self._crash_times[name] = self.sim.now
        else:
            snapshot = snapshot_space(instance.space)
            self._snapshots[name] = (snapshot, self.sim.now)
        instance.shutdown()
        del self.registry[name]
        self.crashes += 1

    def restart(self, name: str) -> None:
        """Bring a crashed instance back, restoring its snapshot.

        In durable mode the replacement instance instead recovers from the
        node's storage backend (WAL replay + anti-entropy rejoin).
        """
        from repro.tuples.persistence import restore_space

        if self.durable:
            if name in self.registry or name not in self._crash_times:
                return
            crashed_at = self._crash_times.pop(name)
            backend = self.backends[name]
            instance = self.factory(name)
            stats = instance.recover_from(
                backend,
                downtime=max(0.0, self.sim.now - crashed_at),
                charge_downtime=self.charge_downtime,
                sync=self.sync_on_restart,
                sync_timeout=self.sync_timeout)
            self.tuples_restored += stats.restored
            self.tuples_reclaimed += stats.reclaimed
            self._recovered.append(instance)
            self.registry[name] = instance
            self.restarts += 1
            return
        stored = self._snapshots.pop(name, None)
        if stored is None or name in self.registry:
            return
        snapshot, crashed_at = stored
        downtime = max(0.0, self.sim.now - crashed_at)
        if self.charge_downtime:
            survivors = []
            for item in snapshot["entries"]:
                remaining = item.get("remaining")
                if remaining is None:
                    survivors.append(item)
                    continue
                left = remaining - downtime
                if left > 0:
                    survivors.append({**item, "remaining": left})
                else:
                    self.tuples_reclaimed += 1
            snapshot = {**snapshot, "entries": survivors}
        instance = self.factory(name)
        restored = restore_space(instance.space, snapshot)
        self.tuples_restored += restored
        self.registry[name] = instance
        self.restarts += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<CrashRestartInjector crashes={self.crashes} "
                f"restarts={self.restarts}>")
