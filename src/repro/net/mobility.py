"""Mobility models and the range→visibility driver.

A pervasive environment mixes "highly mobile, resource limited PDAs" with
"largely static, resource-rich workstations" (section 1).  The mobility
layer models exactly that mix:

* :class:`StaticPlacement` — fixed positions (workstations, backbone).
* :class:`RandomWaypointMobility` — the classic ad-hoc model: pick a random
  waypoint, travel at a random speed, pause, repeat.
* :class:`WaypointTrace` — scripted per-node position timelines for
  repeatable scenario experiments.

Positions alone mean nothing to the protocol; the
:class:`RangeVisibilityDriver` samples positions on a fixed tick, derives
"within radio range" adjacency, and applies the diff to the shared
:class:`~repro.net.visibility.VisibilityGraph`.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional

from repro.net.visibility import VisibilityGraph
from repro.sim.kernel import Simulator
from repro.sim.rng import RngStream


class Position:
    """An (x, y) point in metres."""

    __slots__ = ("x", "y")

    def __init__(self, x: float, y: float) -> None:
        self.x = float(x)
        self.y = float(y)

    def distance_to(self, other: "Position") -> float:
        """Euclidean distance."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Position) and (other.x, other.y) == (self.x, self.y)

    def __repr__(self) -> str:
        return f"Position({self.x:.1f}, {self.y:.1f})"


class MobilityModel:
    """Base: maps node name -> position as a function of queries over time."""

    def position_of(self, node: str) -> Optional[Position]:  # pragma: no cover
        """Current position, or None if the node is unknown to this model."""
        raise NotImplementedError

    def nodes(self) -> list[str]:  # pragma: no cover
        """Node names this model places."""
        raise NotImplementedError

    def advance(self, dt: float) -> None:
        """Move the model forward ``dt`` seconds (default: nothing moves)."""


class StaticPlacement(MobilityModel):
    """Nodes that never move; positions set explicitly or on a grid."""

    def __init__(self, positions: Optional[dict[str, Position]] = None) -> None:
        self._positions: dict[str, Position] = dict(positions or {})

    @classmethod
    def grid(cls, names: Iterable[str], spacing: float) -> "StaticPlacement":
        """Place nodes on a square grid with the given spacing."""
        names = list(names)
        side = max(1, math.ceil(math.sqrt(len(names))))
        positions = {
            name: Position((i % side) * spacing, (i // side) * spacing)
            for i, name in enumerate(names)
        }
        return cls(positions)

    def place(self, node: str, x: float, y: float) -> None:
        """Set or move a node's fixed position."""
        self._positions[node] = Position(x, y)

    def position_of(self, node: str) -> Optional[Position]:
        return self._positions.get(node)

    def nodes(self) -> list[str]:
        return sorted(self._positions)


class RandomWaypointMobility(MobilityModel):
    """Random waypoint over a rectangular area.

    Each node independently: chooses a uniform waypoint, travels toward it
    at a uniform speed in ``[speed_min, speed_max]``, pauses ``pause``
    seconds on arrival, repeats.
    """

    def __init__(self, rng: RngStream, width: float, height: float,
                 speed_min: float = 0.5, speed_max: float = 2.0,
                 pause: float = 5.0) -> None:
        self.rng = rng
        self.width = width
        self.height = height
        self.speed_min = speed_min
        self.speed_max = speed_max
        self.pause = pause
        self._state: dict[str, dict] = {}

    def add_node(self, node: str, position: Optional[Position] = None) -> None:
        """Start tracking a node (random start position when none given)."""
        if position is None:
            position = Position(self.rng.uniform(0, self.width),
                                self.rng.uniform(0, self.height))
        self._state[node] = {
            "pos": position,
            "target": self._random_point(),
            "speed": self.rng.uniform(self.speed_min, self.speed_max),
            "pause_left": 0.0,
        }

    def position_of(self, node: str) -> Optional[Position]:
        state = self._state.get(node)
        return state["pos"] if state else None

    def nodes(self) -> list[str]:
        return sorted(self._state)

    def advance(self, dt: float) -> None:
        for state in self._state.values():
            self._advance_one(state, dt)

    def _advance_one(self, state: dict, dt: float) -> None:
        remaining = dt
        while remaining > 1e-12:
            if state["pause_left"] > 0:
                used = min(state["pause_left"], remaining)
                state["pause_left"] -= used
                remaining -= used
                if state["pause_left"] <= 0:
                    state["target"] = self._random_point()
                    state["speed"] = self.rng.uniform(self.speed_min, self.speed_max)
                continue
            pos, target = state["pos"], state["target"]
            gap = pos.distance_to(target)
            step = state["speed"] * remaining
            if step >= gap:
                state["pos"] = target
                travel_time = gap / state["speed"] if state["speed"] > 0 else 0.0
                remaining -= travel_time
                state["pause_left"] = self.pause
            else:
                frac = step / gap
                state["pos"] = Position(pos.x + (target.x - pos.x) * frac,
                                        pos.y + (target.y - pos.y) * frac)
                remaining = 0.0

    def _random_point(self) -> Position:
        return Position(self.rng.uniform(0, self.width), self.rng.uniform(0, self.height))


class WaypointTrace(MobilityModel):
    """Scripted positions: each node follows (time, x, y) keyframes.

    Positions are linearly interpolated between keyframes, held constant
    before the first and after the last.  The trace is driven by
    :meth:`advance` just like the stochastic models, so the same driver
    works for both.
    """

    def __init__(self) -> None:
        self._keyframes: dict[str, list[tuple[float, Position]]] = {}
        self._now = 0.0

    def add_keyframe(self, node: str, time: float, x: float, y: float) -> None:
        """Append a keyframe; keyframes must be added in time order."""
        frames = self._keyframes.setdefault(node, [])
        if frames and frames[-1][0] > time:
            raise ValueError(f"keyframes for {node!r} must be time-ordered")
        frames.append((time, Position(x, y)))

    def nodes(self) -> list[str]:
        return sorted(self._keyframes)

    def advance(self, dt: float) -> None:
        self._now += dt

    def position_of(self, node: str) -> Optional[Position]:
        frames = self._keyframes.get(node)
        if not frames:
            return None
        if self._now <= frames[0][0]:
            return frames[0][1]
        if self._now >= frames[-1][0]:
            return frames[-1][1]
        for (t0, p0), (t1, p1) in zip(frames, frames[1:]):
            if t0 <= self._now <= t1:
                if t1 == t0:
                    return p1
                frac = (self._now - t0) / (t1 - t0)
                return Position(p0.x + (p1.x - p0.x) * frac,
                                p0.y + (p1.y - p0.y) * frac)
        return frames[-1][1]  # pragma: no cover - unreachable


class RangeVisibilityDriver:
    """Samples a mobility model and keeps the visibility graph in sync.

    Every ``tick`` seconds the driver advances the model, recomputes
    within-``radio_range`` adjacency, and applies only the *diff* to the
    graph (so listeners see clean transitions).
    """

    def __init__(self, sim: Simulator, graph: VisibilityGraph, model: MobilityModel,
                 radio_range: float, tick: float = 1.0) -> None:
        self.sim = sim
        self.graph = graph
        self.model = model
        self.radio_range = radio_range
        self.tick = tick
        self._running = False

    def start(self) -> None:
        """Apply the initial adjacency and begin ticking."""
        self._running = True
        self.sync()
        self.sim.schedule(self.tick, self._tick)

    def stop(self) -> None:
        """Stop ticking (the graph keeps its last state)."""
        self._running = False

    def sync(self) -> None:
        """Recompute adjacency from current positions and apply the diff."""
        names = self.model.nodes()
        for name in names:
            self.graph.add_node(name)
        for i, a in enumerate(names):
            pa = self.model.position_of(a)
            for b in names[i + 1:]:
                pb = self.model.position_of(b)
                in_range = (
                    pa is not None and pb is not None
                    and pa.distance_to(pb) <= self.radio_range
                )
                self.graph.set_visible(a, b, in_range)

    def _tick(self) -> None:
        if not self._running:
            return
        self.model.advance(self.tick)
        self.sync()
        self.sim.schedule(self.tick, self._tick)
