"""Protocol tracing: capture and render frame timelines.

Production middleware needs observability; the tracer taps a
:class:`~repro.net.network.Network` and records every delivered frame (and
optionally drops) with its virtual timestamp.  Filters keep captures
focused; :meth:`ProtocolTrace.render` produces the compact timeline format
used in debugging sessions and a few documentation examples::

    t=0.102  b -> a   query       {'op': 'in', ...}
    t=0.105  a -> b   query_reply {'found': True, ...}
"""

from __future__ import annotations

import copy
from typing import Callable, Optional

from repro.net.message import Message
from repro.net.network import Network

FrameFilter = Callable[[Message], bool]


class TraceEntry:
    """One captured frame delivery (or drop)."""

    __slots__ = ("time", "src", "dst", "kind", "payload", "dropped",
                 "drop_reason")

    def __init__(self, time: float, src: str, dst: Optional[str], kind: str,
                 payload: dict, dropped: bool = False,
                 drop_reason: Optional[str] = None) -> None:
        self.time = time
        self.src = src
        self.dst = dst
        self.kind = kind
        self.payload = payload
        self.dropped = dropped
        self.drop_reason = drop_reason

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flag = f" DROPPED({self.drop_reason})" if self.dropped else ""
        return f"<TraceEntry t={self.time:.3f} {self.src}->{self.dst} {self.kind}{flag}>"


class ProtocolTrace:
    """Captures frames flowing through a network.

    The tracer wraps every node's delivery handler (including nodes
    attached after the tracer starts), so it sees exactly what the nodes
    see.  With ``capture_drops`` (the default) it also subscribes to the
    network's drop listener, so lost/faulted frames appear in the timeline
    with their drop reason.  Stop with :meth:`detach`.
    """

    def __init__(self, network: Network, frame_filter: Optional[FrameFilter] = None,
                 max_entries: int = 100_000, capture_drops: bool = True) -> None:
        self.network = network
        self.filter = frame_filter
        self.max_entries = max_entries
        self.capture_drops = capture_drops
        self.entries: list[TraceEntry] = []
        self._wrapped: dict[str, Callable] = {}
        self._original_attach = network.attach
        self._attached = False
        self._unsubscribe_drops = None

    # ------------------------------------------------------------------
    def attach(self) -> "ProtocolTrace":
        """Begin capturing (idempotent); returns self for chaining."""
        if self._attached:
            return self
        self._attached = True
        for name in list(self.network._handlers):
            self._wrap(name)
        network = self.network
        tracer = self

        def attach_and_wrap(name, handler):
            iface = tracer._original_attach(name, handler)
            tracer._wrap(name)
            return iface

        network.attach = attach_and_wrap
        if self.capture_drops:
            self._unsubscribe_drops = network.on_drop(self._record_drop)
        return self

    def detach(self) -> None:
        """Stop capturing and restore the original handlers."""
        if not self._attached:
            return
        self._attached = False
        for name, original in self._wrapped.items():
            if name in self.network._handlers:
                self.network._handlers[name] = original
        self._wrapped.clear()
        self.network.attach = self._original_attach
        if self._unsubscribe_drops is not None:
            self._unsubscribe_drops()
            self._unsubscribe_drops = None

    def _wrap(self, name: str) -> None:
        if name in self._wrapped:
            return
        original = self.network._handlers[name]
        self._wrapped[name] = original
        tracer = self

        def traced(msg: Message) -> None:
            tracer._record(msg)
            original(msg)

        self.network._handlers[name] = traced

    def _record(self, msg: Message) -> None:
        if self.filter is not None and not self.filter(msg):
            return
        if len(self.entries) >= self.max_entries:
            return
        # Deep-copy the payload at capture time: handlers (and fault
        # injectors) may mutate it in place afterwards, which would
        # silently falsify the captured timeline.
        self.entries.append(TraceEntry(self.network.sim.now, msg.src, msg.dst,
                                       msg.kind, copy.deepcopy(msg.payload)))

    def _record_drop(self, msg: Message, reason: str) -> None:
        if self.filter is not None and not self.filter(msg):
            return
        if len(self.entries) >= self.max_entries:
            return
        self.entries.append(TraceEntry(self.network.sim.now, msg.src, msg.dst,
                                       msg.kind, copy.deepcopy(msg.payload),
                                       dropped=True, drop_reason=reason))

    # ------------------------------------------------------------------
    def by_kind(self, kind: str) -> list[TraceEntry]:
        """Captured entries of one protocol kind."""
        return [e for e in self.entries if e.kind == kind]

    def drops(self, reason: Optional[str] = None) -> list[TraceEntry]:
        """Captured drops, optionally filtered to one reason."""
        return [e for e in self.entries if e.dropped
                and (reason is None or e.drop_reason == reason)]

    def between(self, a: str, b: str) -> list[TraceEntry]:
        """Captured entries exchanged (either direction) between a and b."""
        return [e for e in self.entries
                if {e.src, e.dst} == {a, b}]

    def clear(self) -> None:
        """Drop everything captured so far."""
        self.entries.clear()

    def render(self, limit: Optional[int] = None) -> str:
        """The timeline as text, newest entries last."""
        entries = self.entries if limit is None else self.entries[-limit:]
        lines = []
        for entry in entries:
            dst = entry.dst if entry.dst is not None else "*"
            payload = {k: v for k, v in entry.payload.items() if k != "kind"}
            flag = f"  !DROP({entry.drop_reason})" if entry.dropped else ""
            lines.append(f"t={entry.time:9.3f}  {entry.src} -> {dst:<10} "
                         f"{entry.kind:<14} {payload}{flag}")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.entries)
