"""Multi-hop visibility: "routed through other instances".

Section 2.2 leaves the implementation of visibility open: "the exact means
of this communication may be implemented in different ways, e.g., through
direct communication only, or routed through other instances".  The rest
of the repository defaults to direct (1-hop) visibility; this driver
implements the routed variant: two nodes are *visible* when a physical
path of at most ``max_hops`` radio links connects them.

The driver keeps a private *physical* adjacency (fed by a mobility model
exactly like :class:`~repro.net.mobility.RangeVisibilityDriver`) and
publishes the k-hop closure into the shared
:class:`~repro.net.visibility.VisibilityGraph` that the middleware
observes.  Latency for the logical edges remains the network's per-frame
model; multi-hop forwarding cost can be approximated by a larger per-byte
latency if an experiment needs it.
"""

from __future__ import annotations

from collections import deque

from repro.net.mobility import MobilityModel
from repro.net.visibility import VisibilityGraph
from repro.sim.kernel import Simulator


class MultiHopVisibilityDriver:
    """Publishes k-hop reachability over radio links as visibility."""

    def __init__(self, sim: Simulator, graph: VisibilityGraph,
                 model: MobilityModel, radio_range: float,
                 max_hops: int = 2, tick: float = 1.0) -> None:
        if max_hops < 1:
            raise ValueError("max_hops must be at least 1")
        self.sim = sim
        self.graph = graph
        self.model = model
        self.radio_range = radio_range
        self.max_hops = max_hops
        self.tick = tick
        self._running = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Apply the initial closure and begin ticking."""
        self._running = True
        self.sync()
        self.sim.schedule(self.tick, self._tick)

    def stop(self) -> None:
        """Stop ticking (the graph keeps its last published state)."""
        self._running = False

    # ------------------------------------------------------------------
    def physical_links(self) -> dict[str, set[str]]:
        """The current 1-hop radio adjacency."""
        names = self.model.nodes()
        links: dict[str, set[str]] = {name: set() for name in names}
        for i, a in enumerate(names):
            pa = self.model.position_of(a)
            if pa is None:
                continue
            for b in names[i + 1:]:
                pb = self.model.position_of(b)
                if pb is None:
                    continue
                if pa.distance_to(pb) <= self.radio_range:
                    links[a].add(b)
                    links[b].add(a)
        return links

    def sync(self) -> None:
        """Recompute the k-hop closure and publish the diff."""
        links = self.physical_links()
        names = sorted(links)
        for name in names:
            self.graph.add_node(name)
        reach = {name: self._within_hops(name, links) for name in names}
        for i, a in enumerate(names):
            for b in names[i + 1:]:
                self.graph.set_visible(a, b, b in reach[a])

    def _within_hops(self, start: str, links: dict[str, set[str]]) -> set[str]:
        """Nodes reachable from ``start`` in <= max_hops radio links."""
        seen = {start}
        frontier = deque([(start, 0)])
        reachable = set()
        while frontier:
            node, depth = frontier.popleft()
            if depth == self.max_hops:
                continue
            for neighbor in links.get(node, ()):
                if neighbor in seen:
                    continue
                seen.add(neighbor)
                reachable.add(neighbor)
                frontier.append((neighbor, depth + 1))
        return reachable

    def _tick(self) -> None:
        if not self._running:
            return
        self.model.advance(self.tick)
        self.sync()
        self.sim.schedule(self.tick, self._tick)
