"""Network frames.

A :class:`Message` is what the simulated network moves between nodes: a
source, a destination (``None`` marks a multicast), and a JSON-representable
payload dict.  The payload convention throughout the repository is
``{"kind": <str>, ...}`` — each protocol (Tiamat, Limbo, LIME, ...) defines
its own kinds.  Size is computed once from the encoded payload — priced by
the network's configured :class:`~repro.tuples.serialization.WireCodec`
(tag-first JSON by default, the compact binary codec when selected) — and
used for both latency (per-byte transmission delay) and byte accounting.

Every frame also carries a **checksum** over its encoded payload, computed
at send time.  Real link layers discard damaged frames; the simulated
network models that by letting fault injectors :meth:`corrupt` a frame in
flight, after which :meth:`verify` fails and the network drops the frame at
delivery time (drop reason ``corrupt``) instead of handing garbage to a
protocol handler.

**Batch envelopes** (kind :data:`BATCH`) coalesce every unicast frame
queued to the same destination within one simulation tick into a single
physical frame: ``{"kind": "batch", "frames": [payload, ...]}``.  The
envelope is what flies (one loss/fault/latency decision, one stats entry);
the network unpacks it at delivery and hands each logical sub-frame to the
handler in queue order, so per-destination FIFO ordering is preserved.
Sub-frames are rebuilt with :meth:`Message.sub_frame`, which skips the
checksum (the envelope was already verified) — they never travel alone.
"""

from __future__ import annotations

import itertools
import json
import zlib
from typing import Optional

from repro.tuples.serialization import WireCodec, encoded_size

#: Network-layer frame kind for batch envelopes (not a Tiamat protocol kind).
BATCH = "batch"

_ids = itertools.count(1)


def payload_checksum(payload: dict) -> int:
    """CRC32 of the canonical JSON encoding of ``payload``."""
    encoded = json.dumps(payload, separators=(",", ":"), sort_keys=True,
                         default=str)
    return zlib.crc32(encoded.encode("utf-8"))


class Message:
    """A frame in flight (or delivered) on the simulated network."""

    __slots__ = ("msg_id", "src", "dst", "payload", "size", "sent_at",
                 "checksum", "codec")

    def __init__(self, src: str, dst: Optional[str], payload: dict,
                 sent_at: float, codec: Optional[WireCodec] = None) -> None:
        self.msg_id = next(_ids)
        self.src = src
        self.dst = dst
        self.payload = payload
        self.codec = codec
        self.size = (encoded_size(payload) if codec is None
                     else codec.encoded_size(payload))
        self.sent_at = sent_at
        self.checksum = payload_checksum(payload)

    @property
    def kind(self) -> str:
        """The protocol message kind (payload ``"kind"`` key)."""
        return self.payload.get("kind", "?")

    def copy_for(self, dst: Optional[str], sent_at: float) -> "Message":
        """A fresh frame (new id) carrying the same payload to ``dst``."""
        return Message(self.src, dst, self.payload, sent_at, codec=self.codec)

    @classmethod
    def sub_frame(cls, envelope: "Message", payload: dict) -> "Message":
        """A logical frame unpacked from a delivered batch envelope.

        The envelope's checksum was already verified, so the sub-frame
        skips checksum computation (:meth:`verify` reports True); its size
        is priced by the same codec so per-frame accounting stays honest.
        """
        msg = object.__new__(cls)
        msg.msg_id = next(_ids)
        msg.src = envelope.src
        msg.dst = envelope.dst
        msg.payload = payload
        msg.codec = envelope.codec
        msg.size = (encoded_size(payload) if envelope.codec is None
                    else envelope.codec.encoded_size(payload))
        msg.sent_at = envelope.sent_at
        msg.checksum = None
        return msg

    # ------------------------------------------------------------------
    # Integrity
    # ------------------------------------------------------------------
    def corrupt(self) -> None:
        """Damage the frame in flight: the payload no longer matches the
        checksum computed at send time, so :meth:`verify` fails."""
        self.payload = {"kind": self.payload.get("kind", "?"),
                        "__garbled__": True}
        if self.checksum is None:  # a sub-frame: force the mismatch anyway
            self.checksum = -1

    def verify(self) -> bool:
        """True iff the payload still matches the send-time checksum."""
        if self.checksum is None:
            return True  # sub-frame of an already-verified envelope
        return payload_checksum(self.payload) == self.checksum

    @property
    def is_multicast(self) -> bool:
        """True for frames addressed to every visible neighbour."""
        return self.dst is None

    @property
    def is_batch(self) -> bool:
        """True for batch envelopes carrying multiple logical frames."""
        return self.payload.get("kind") == BATCH

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        target = "*" if self.dst is None else self.dst
        return f"<Message #{self.msg_id} {self.src}->{target} {self.kind} {self.size}B>"
