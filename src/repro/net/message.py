"""Network frames.

A :class:`Message` is what the simulated network moves between nodes: a
source, a destination (``None`` marks a multicast), and a JSON-representable
payload dict.  The payload convention throughout the repository is
``{"kind": <str>, ...}`` — each protocol (Tiamat, Limbo, LIME, ...) defines
its own kinds.  Size is computed once from the encoded payload and used for
both latency (per-byte transmission delay) and byte accounting.

Every frame also carries a **checksum** over its encoded payload, computed
at send time.  Real link layers discard damaged frames; the simulated
network models that by letting fault injectors :meth:`corrupt` a frame in
flight, after which :meth:`verify` fails and the network drops the frame at
delivery time (drop reason ``corrupt``) instead of handing garbage to a
protocol handler.
"""

from __future__ import annotations

import itertools
import json
import zlib
from typing import Optional

from repro.tuples.serialization import encoded_size

_ids = itertools.count(1)


def payload_checksum(payload: dict) -> int:
    """CRC32 of the canonical JSON encoding of ``payload``."""
    encoded = json.dumps(payload, separators=(",", ":"), sort_keys=True,
                         default=str)
    return zlib.crc32(encoded.encode("utf-8"))


class Message:
    """A frame in flight (or delivered) on the simulated network."""

    __slots__ = ("msg_id", "src", "dst", "payload", "size", "sent_at",
                 "checksum")

    def __init__(self, src: str, dst: Optional[str], payload: dict,
                 sent_at: float) -> None:
        self.msg_id = next(_ids)
        self.src = src
        self.dst = dst
        self.payload = payload
        self.size = encoded_size(payload)
        self.sent_at = sent_at
        self.checksum = payload_checksum(payload)

    @property
    def kind(self) -> str:
        """The protocol message kind (payload ``"kind"`` key)."""
        return self.payload.get("kind", "?")

    def copy_for(self, dst: Optional[str], sent_at: float) -> "Message":
        """A fresh frame (new id) carrying the same payload to ``dst``."""
        return Message(self.src, dst, self.payload, sent_at)

    # ------------------------------------------------------------------
    # Integrity
    # ------------------------------------------------------------------
    def corrupt(self) -> None:
        """Damage the frame in flight: the payload no longer matches the
        checksum computed at send time, so :meth:`verify` fails."""
        self.payload = {"kind": self.payload.get("kind", "?"),
                        "__garbled__": True}

    def verify(self) -> bool:
        """True iff the payload still matches the send-time checksum."""
        return payload_checksum(self.payload) == self.checksum

    @property
    def is_multicast(self) -> bool:
        """True for frames addressed to every visible neighbour."""
        return self.dst is None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        target = "*" if self.dst is None else self.dst
        return f"<Message #{self.msg_id} {self.src}->{target} {self.kind} {self.size}B>"
