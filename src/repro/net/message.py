"""Network frames.

A :class:`Message` is what the simulated network moves between nodes: a
source, a destination (``None`` marks a multicast), and a JSON-representable
payload dict.  The payload convention throughout the repository is
``{"kind": <str>, ...}`` — each protocol (Tiamat, Limbo, LIME, ...) defines
its own kinds.  Size is computed once from the encoded payload and used for
both latency (per-byte transmission delay) and byte accounting.
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.tuples.serialization import encoded_size

_ids = itertools.count(1)


class Message:
    """A frame in flight (or delivered) on the simulated network."""

    __slots__ = ("msg_id", "src", "dst", "payload", "size", "sent_at")

    def __init__(self, src: str, dst: Optional[str], payload: dict, sent_at: float) -> None:
        self.msg_id = next(_ids)
        self.src = src
        self.dst = dst
        self.payload = payload
        self.size = encoded_size(payload)
        self.sent_at = sent_at

    @property
    def kind(self) -> str:
        """The protocol message kind (payload ``"kind"`` key)."""
        return self.payload.get("kind", "?")

    @property
    def is_multicast(self) -> bool:
        """True for frames addressed to every visible neighbour."""
        return self.dst is None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        target = "*" if self.dst is None else self.dst
        return f"<Message #{self.msg_id} {self.src}->{target} {self.kind} {self.size}B>"
