"""Message and byte accounting for experiments.

Every benchmark in the harness reports communication cost (messages per
operation, bytes per node), so the network keeps cheap, always-on counters
rather than an optional tracing layer.
"""

from __future__ import annotations

from collections import Counter


class NodeStats:
    """Per-node communication counters."""

    __slots__ = (
        "sent_unicast", "sent_multicast", "received",
        "bytes_sent", "bytes_received", "dropped_invisible", "dropped_loss",
        "by_kind",
    )

    def __init__(self) -> None:
        self.sent_unicast = 0
        self.sent_multicast = 0
        self.received = 0
        self.bytes_sent = 0
        self.bytes_received = 0
        self.dropped_invisible = 0
        self.dropped_loss = 0
        self.by_kind: Counter = Counter()

    @property
    def sent(self) -> int:
        """Total frames originated (unicast sends + multicast transmissions)."""
        return self.sent_unicast + self.sent_multicast

    def as_dict(self) -> dict:
        """Plain-dict snapshot for reports."""
        return {
            "sent_unicast": self.sent_unicast,
            "sent_multicast": self.sent_multicast,
            "received": self.received,
            "bytes_sent": self.bytes_sent,
            "bytes_received": self.bytes_received,
            "dropped_invisible": self.dropped_invisible,
            "dropped_loss": self.dropped_loss,
        }


class NetworkStats:
    """Whole-network counters plus the per-node breakdown."""

    def __init__(self) -> None:
        self.nodes: dict[str, NodeStats] = {}
        self.total_messages = 0
        self.total_bytes = 0
        self.total_dropped = 0

    def node(self, name: str) -> NodeStats:
        """The (auto-created) counters for a node."""
        stats = self.nodes.get(name)
        if stats is None:
            stats = NodeStats()
            self.nodes[name] = stats
        return stats

    def record_send(self, src: str, size: int, multicast: bool, kind: str) -> None:
        """Account one originated frame."""
        stats = self.node(src)
        if multicast:
            stats.sent_multicast += 1
        else:
            stats.sent_unicast += 1
        stats.bytes_sent += size
        stats.by_kind[kind] += 1
        self.total_messages += 1
        self.total_bytes += size

    def record_receive(self, dst: str, size: int) -> None:
        """Account one delivered frame."""
        stats = self.node(dst)
        stats.received += 1
        stats.bytes_received += size

    def record_drop(self, src: str, invisible: bool) -> None:
        """Account a frame that never arrived."""
        stats = self.node(src)
        if invisible:
            stats.dropped_invisible += 1
        else:
            stats.dropped_loss += 1
        self.total_dropped += 1

    def reset(self) -> None:
        """Zero all counters (used between benchmark phases)."""
        self.nodes.clear()
        self.total_messages = 0
        self.total_bytes = 0
        self.total_dropped = 0
