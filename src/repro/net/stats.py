"""Message and byte accounting for experiments.

Every benchmark in the harness reports communication cost (messages per
operation, bytes per node), so the network keeps cheap, always-on counters
rather than an optional tracing layer.

Drops are attributed to a *reason* so chaos runs are debuggable: a frame
that never arrived was either addressed to an invisible peer
(``invisible``), lost to the network's i.i.d. loss model (``loss``),
addressed to a node that was down at delivery time (``node_down``),
swallowed by a fault injector (``fault``), or damaged in flight and
rejected by the receiver's checksum (``corrupt``).
"""

from __future__ import annotations

from collections import Counter
from typing import Optional

#: Canonical drop reasons (fault injectors may add their own).
DROP_INVISIBLE = "invisible"   # destination not visible at send time
DROP_LOSS = "loss"             # the network's i.i.d. random loss
DROP_NODE_DOWN = "node_down"   # destination down/detached at delivery time
DROP_FAULT = "fault"           # swallowed by an injected fault
DROP_CORRUPT = "corrupt"       # payload damaged in flight, checksum failed

DROP_REASONS = (DROP_INVISIBLE, DROP_LOSS, DROP_NODE_DOWN, DROP_FAULT,
                DROP_CORRUPT)


class NodeStats:
    """Per-node communication counters."""

    __slots__ = (
        "sent_unicast", "sent_multicast", "received",
        "bytes_sent", "bytes_received", "drops", "by_kind",
    )

    def __init__(self) -> None:
        self.sent_unicast = 0
        self.sent_multicast = 0
        self.received = 0
        self.bytes_sent = 0
        self.bytes_received = 0
        self.drops: Counter = Counter()
        self.by_kind: Counter = Counter()

    @property
    def sent(self) -> int:
        """Total frames originated (unicast sends + multicast transmissions)."""
        return self.sent_unicast + self.sent_multicast

    @property
    def dropped(self) -> int:
        """Total frames that never arrived, any reason."""
        return sum(self.drops.values())

    @property
    def dropped_invisible(self) -> int:
        """Drops because the destination was unreachable (legacy rollup).

        Historically the single "invisible" counter covered both
        not-visible-at-send and down-at-delivery; the rollup keeps that
        meaning while :attr:`drops` carries the per-reason split.
        """
        return self.drops[DROP_INVISIBLE] + self.drops[DROP_NODE_DOWN]

    @property
    def dropped_loss(self) -> int:
        """Drops from the i.i.d. loss model."""
        return self.drops[DROP_LOSS]

    def as_dict(self) -> dict:
        """Plain-dict snapshot for reports.

        Includes the per-kind frame breakdown (``by_kind``) and the full
        per-reason ``drops`` split, so report JSON lines up with what
        :meth:`NetworkStats.drop_summary` and the trace show.
        """
        return {
            "sent_unicast": self.sent_unicast,
            "sent_multicast": self.sent_multicast,
            "received": self.received,
            "bytes_sent": self.bytes_sent,
            "bytes_received": self.bytes_received,
            "dropped_invisible": self.dropped_invisible,
            "dropped_loss": self.dropped_loss,
            "drops": dict(self.drops),
            "by_kind": dict(self.by_kind),
        }


class NetworkStats:
    """Whole-network counters plus the per-node breakdown."""

    def __init__(self) -> None:
        self.nodes: dict[str, NodeStats] = {}
        self.total_messages = 0
        self.total_bytes = 0
        self.total_dropped = 0
        self.drops_by_reason: Counter = Counter()

    def node(self, name: str) -> NodeStats:
        """The (auto-created) counters for a node."""
        stats = self.nodes.get(name)
        if stats is None:
            stats = NodeStats()
            self.nodes[name] = stats
        return stats

    def record_send(self, src: str, size: int, multicast: bool, kind: str) -> None:
        """Account one originated frame."""
        stats = self.node(src)
        if multicast:
            stats.sent_multicast += 1
        else:
            stats.sent_unicast += 1
        stats.bytes_sent += size
        stats.by_kind[kind] += 1
        self.total_messages += 1
        self.total_bytes += size

    def record_receive(self, dst: str, size: int) -> None:
        """Account one delivered frame."""
        stats = self.node(dst)
        stats.received += 1
        stats.bytes_received += size

    def record_drop(self, src: str, invisible: Optional[bool] = None,
                    reason: Optional[str] = None) -> None:
        """Account a frame that never arrived.

        Callers either name a ``reason`` directly or use the legacy
        ``invisible`` boolean (True → ``invisible``, False → ``loss``).
        """
        if reason is None:
            reason = DROP_INVISIBLE if invisible else DROP_LOSS
        self.node(src).drops[reason] += 1
        self.drops_by_reason[reason] += 1
        self.total_dropped += 1

    def drop_summary(self) -> str:
        """One-line per-reason drop rendering for logs and the CLI."""
        if not self.drops_by_reason:
            return "drops: none"
        parts = [f"{reason}={count}" for reason, count
                 in sorted(self.drops_by_reason.items())]
        return "drops: " + " ".join(parts)

    def reset(self) -> None:
        """Zero all counters (used between benchmark phases)."""
        self.nodes.clear()
        self.total_messages = 0
        self.total_bytes = 0
        self.total_dropped = 0
        self.drops_by_reason.clear()
