"""The visibility graph: who can currently communicate with whom.

Visibility is the only environmental concept the Tiamat model depends on
(section 2.2): the model is agnostic about *why* two instances can talk
(radio range, routing through others, wired infrastructure).  This class is
therefore the single source of truth that every driver mutates:

* experiment scripts set edges explicitly (the Figure 1 scenarios);
* :class:`~repro.net.mobility.RangeVisibilityDriver` derives edges from node
  positions and radio range;
* :class:`~repro.net.churn.ChurnInjector` takes whole nodes down and up.

Listeners fire on every transition, which is what Tiamat's *continuous*
propagation mode and the "actively perceive change" option in section 2.3
are built on.
"""

from __future__ import annotations

from typing import Callable, Iterable

#: (a, b, now_visible) — a and b in sorted order.
EdgeListener = Callable[[str, str, bool], None]
#: (node, now_up)
NodeListener = Callable[[str, bool], None]


class VisibilityGraph:
    """A symmetric, dynamic graph over node names with up/down state."""

    def __init__(self) -> None:
        self._adjacent: dict[str, set[str]] = {}
        self._down: set[str] = set()
        self._edge_listeners: list[EdgeListener] = []
        self._node_listeners: list[NodeListener] = []
        self.transitions = 0

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def add_node(self, node: str) -> None:
        """Register a node (idempotent); starts up and isolated."""
        self._adjacent.setdefault(node, set())

    def nodes(self) -> list[str]:
        """All registered nodes (up or down), sorted for determinism."""
        return sorted(self._adjacent)

    def is_up(self, node: str) -> bool:
        """Whether the node is currently powered/participating."""
        return node in self._adjacent and node not in self._down

    # ------------------------------------------------------------------
    # Edges
    # ------------------------------------------------------------------
    def set_visible(self, a: str, b: str, visible: bool = True) -> None:
        """Set or clear the (symmetric) visibility edge between a and b."""
        if a == b:
            return
        self.add_node(a)
        self.add_node(b)
        currently = b in self._adjacent[a]
        if currently == visible:
            return
        if visible:
            self._adjacent[a].add(b)
            self._adjacent[b].add(a)
        else:
            self._adjacent[a].discard(b)
            self._adjacent[b].discard(a)
        self.transitions += 1
        lo, hi = sorted((a, b))
        for listener in list(self._edge_listeners):
            listener(lo, hi, visible)

    def connect_clique(self, nodes: Iterable[str]) -> None:
        """Make every pair of the given nodes mutually visible."""
        nodes = list(nodes)
        for i, a in enumerate(nodes):
            for b in nodes[i + 1:]:
                self.set_visible(a, b, True)

    def isolate(self, node: str) -> None:
        """Remove all edges touching ``node`` (it stays up)."""
        self.add_node(node)
        for other in list(self._adjacent[node]):
            self.set_visible(node, other, False)

    def visible(self, a: str, b: str) -> bool:
        """True iff a and b are mutually visible and both up."""
        if a == b:
            return False
        if not self.is_up(a) or not self.is_up(b):
            return False
        return b in self._adjacent.get(a, ())

    def neighbors(self, node: str) -> list[str]:
        """Nodes currently visible from ``node`` (sorted, up only)."""
        if not self.is_up(node):
            return []
        return sorted(n for n in self._adjacent.get(node, ()) if self.is_up(n))

    # ------------------------------------------------------------------
    # Up/down state (churn)
    # ------------------------------------------------------------------
    def set_up(self, node: str, up: bool) -> None:
        """Power a node up or down.  Edges are retained but inert while down."""
        self.add_node(node)
        currently = node not in self._down
        if currently == up:
            return
        if up:
            self._down.discard(node)
        else:
            self._down.add(node)
        self.transitions += 1
        for listener in list(self._node_listeners):
            listener(node, up)
        # A node's edges effectively appear/disappear with it; tell edge
        # listeners so propagation logic sees the change uniformly.
        for other in sorted(self._adjacent.get(node, ())):
            if other in self._down:
                continue
            lo, hi = sorted((node, other))
            for listener in list(self._edge_listeners):
                listener(lo, hi, up)

    # ------------------------------------------------------------------
    # Listeners
    # ------------------------------------------------------------------
    def on_edge_change(self, listener: EdgeListener) -> Callable[[], None]:
        """Subscribe to edge transitions; returns an unsubscribe callable."""
        self._edge_listeners.append(listener)
        return lambda: self._edge_listeners.remove(listener)

    def on_node_change(self, listener: NodeListener) -> Callable[[], None]:
        """Subscribe to up/down transitions; returns an unsubscribe callable."""
        self._node_listeners.append(listener)
        return lambda: self._node_listeners.remove(listener)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        edges = sum(len(v) for v in self._adjacent.values()) // 2
        return f"<VisibilityGraph nodes={len(self._adjacent)} edges={edges} down={len(self._down)}>"
