"""Churn injection: nodes leaving and (re)joining the environment.

Devices in a pervasive environment "may not exist long enough to communicate
with another device directly (it may run out of battery power, for
example)" — section 1.  The injector models that as an alternating renewal
process per node: exponentially distributed up-times and down-times, plus a
scripted one-shot API for deterministic scenario tests (kill this proxy at
t=40, bring the replacement up at t=45).
"""

from __future__ import annotations

from typing import Optional

from repro.net.visibility import VisibilityGraph
from repro.sim.kernel import Simulator
from repro.sim.rng import RngStream


class ChurnInjector:
    """Drives up/down transitions on a visibility graph."""

    def __init__(self, sim: Simulator, graph: VisibilityGraph,
                 rng: Optional[RngStream] = None) -> None:
        self.sim = sim
        self.graph = graph
        self.rng = rng if rng is not None else sim.rng("churn")
        self._auto: dict[str, dict] = {}
        self.downs = 0
        self.ups = 0

    # ------------------------------------------------------------------
    # Scripted control
    # ------------------------------------------------------------------
    def kill_at(self, node: str, time: float) -> None:
        """Take ``node`` down at the given absolute time."""
        self.sim.schedule_at(time, self._set, node, False)

    def revive_at(self, node: str, time: float) -> None:
        """Bring ``node`` up at the given absolute time."""
        self.sim.schedule_at(time, self._set, node, True)

    def kill(self, node: str) -> None:
        """Take ``node`` down immediately."""
        self._set(node, False)

    def revive(self, node: str) -> None:
        """Bring ``node`` up immediately."""
        self._set(node, True)

    # ------------------------------------------------------------------
    # Stochastic churn
    # ------------------------------------------------------------------
    def auto_churn(self, node: str, mean_uptime: float, mean_downtime: float) -> None:
        """Cycle ``node`` through exponential up/down periods indefinitely.

        The first transition (to down) is scheduled after one full uptime
        draw, so nodes start their session already up.
        """
        if mean_uptime <= 0 or mean_downtime <= 0:
            raise ValueError("mean up/down times must be positive")
        self._auto[node] = {"up": mean_uptime, "down": mean_downtime}
        delay = self.rng.expovariate(1.0 / mean_uptime)
        self.sim.schedule(delay, self._auto_flip, node, False)

    def stop_auto_churn(self, node: str) -> None:
        """Cancel automatic churn for ``node`` (state left as-is)."""
        self._auto.pop(node, None)

    # ------------------------------------------------------------------
    def _auto_flip(self, node: str, to_up: bool) -> None:
        params = self._auto.get(node)
        if params is None:
            return
        self._set(node, to_up)
        mean = params["up"] if to_up else params["down"]
        delay = self.rng.expovariate(1.0 / mean)
        self.sim.schedule(delay, self._auto_flip, node, not to_up)

    def _set(self, node: str, up: bool) -> None:
        was_up = self.graph.is_up(node)
        self.graph.set_up(node, up)
        if up and not was_up:
            self.ups += 1
        elif not up and was_up:
            self.downs += 1
