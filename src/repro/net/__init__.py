"""The simulated pervasive network substrate.

The paper's model rests on one concept only: **visibility** ("another
instance of Tiamat is considered visible if it can be communicated with in
some way", section 2.2).  This package provides that concept and the
machinery experiments need around it:

* :class:`VisibilityGraph` — the single source of truth for who can talk to
  whom, with change listeners (the hook for the model's *continuous*
  operation-propagation mode).
* :class:`Network` — unicast and multicast message delivery with latency,
  probabilistic loss, byte accounting, and per-node statistics.  Messages
  are only delivered between mutually visible, up nodes.
* Mobility models (:mod:`repro.net.mobility`) — static placements, random
  waypoint, and scripted traces; they move node positions, and
  :class:`RangeVisibilityDriver` converts positions + radio range into
  visibility-graph updates.
* :class:`ChurnInjector` (:mod:`repro.net.churn`) — takes nodes down and up
  on random or scripted schedules, modelling battery death, sleep, and
  departure.
* Fault injection (:mod:`repro.net.faults`) — a :class:`FaultPlan` of
  composable injectors (Gilbert–Elliott burst loss, duplication, bounded
  reordering, payload corruption, one-way links) plus
  :class:`CrashRestartInjector`, which power-cycles whole instances through
  the persistence layer.
"""

from repro.net.faults import (
    CorruptPayload,
    CrashRestartInjector,
    DuplicateFrames,
    FaultInjector,
    FaultPlan,
    GilbertElliottLoss,
    OneWayLink,
    RandomLoss,
    ReorderFrames,
)
from repro.net.message import Message
from repro.net.network import Network, NetworkInterface
from repro.net.visibility import VisibilityGraph
from repro.net.mobility import (
    Position,
    RandomWaypointMobility,
    RangeVisibilityDriver,
    StaticPlacement,
    WaypointTrace,
)
from repro.net.churn import ChurnInjector
from repro.net.stats import NetworkStats, NodeStats
from repro.net.reachability import MultiHopVisibilityDriver
from repro.net.trace import ProtocolTrace, TraceEntry

__all__ = [
    "ChurnInjector",
    "CorruptPayload",
    "CrashRestartInjector",
    "DuplicateFrames",
    "FaultInjector",
    "FaultPlan",
    "GilbertElliottLoss",
    "MultiHopVisibilityDriver",
    "OneWayLink",
    "ProtocolTrace",
    "RandomLoss",
    "ReorderFrames",
    "TraceEntry",
    "Message",
    "Network",
    "NetworkInterface",
    "NetworkStats",
    "NodeStats",
    "Position",
    "RandomWaypointMobility",
    "RangeVisibilityDriver",
    "StaticPlacement",
    "VisibilityGraph",
    "WaypointTrace",
]
