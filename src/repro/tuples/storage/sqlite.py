"""Sqlite-backed tuple storage for spaces bigger than RAM.

Every deposit and removal is applied directly to an ``entries`` table and
committed, so the database *is* the compact representation — there is no
log to replay and :meth:`SqliteBackend.compact` is a no-op.  Tuples are
stored as binary-codec blobs (the PR 3 LEB128 wire form), which round-trips
every field type including raw ``bytes``.

Sqlite's own journal provides the torn-write protection the WAL backend
implements by hand; what this module adds is the same
:class:`~repro.tuples.storage.base.StorageBackend` contract — high-water
id tracking, lease-aware recovery, listener plumbing — over a store that
never holds the full entry set in memory.
"""

from __future__ import annotations

import sqlite3
from typing import Optional

from repro.tuples.model import Tuple
from repro.tuples.serialization import decode_tuple_binary, encode_tuple_binary
from repro.tuples.storage.base import RecoveredState, StorageBackend

_SCHEMA = """
CREATE TABLE IF NOT EXISTS entries (
    id  INTEGER PRIMARY KEY,
    tup BLOB NOT NULL,
    exp REAL,
    at  REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS meta (
    k TEXT PRIMARY KEY,
    v REAL NOT NULL
);
"""


class SqliteBackend(StorageBackend):
    """Stdlib ``sqlite3`` storage backend (``:memory:`` supported)."""

    def __init__(self, path: str = ":memory:") -> None:
        super().__init__()
        self.path = path
        self._conn = sqlite3.connect(path)
        self._conn.executescript(_SCHEMA)
        self._conn.commit()

    # ------------------------------------------------------------------
    # Meta helpers
    # ------------------------------------------------------------------
    def _get_meta(self, key: str) -> Optional[float]:
        row = self._conn.execute(
            "SELECT v FROM meta WHERE k = ?", (key,)).fetchone()
        return None if row is None else row[0]

    def _set_meta(self, key: str, value: float) -> None:
        self._conn.execute(
            "INSERT OR REPLACE INTO meta (k, v) VALUES (?, ?)", (key, value))

    def _bump_high_water(self, entry_id: int) -> None:
        current = self._get_meta("high_water") or 0
        if entry_id > current:
            self._set_meta("high_water", float(entry_id))

    # ------------------------------------------------------------------
    # The durable contract
    # ------------------------------------------------------------------
    def record_out(self, entry_id: int, tup: Tuple,
                   expires_at: Optional[float], at: float) -> None:
        blob = encode_tuple_binary(tup)
        self._conn.execute(
            "INSERT OR REPLACE INTO entries (id, tup, exp, at) "
            "VALUES (?, ?, ?, ?)", (entry_id, blob, expires_at, at))
        self._bump_high_water(entry_id)
        self._set_meta("last_time", at)
        self._conn.commit()
        self.records_out += 1
        self.bytes_appended += len(blob)

    def record_remove(self, entry_id: int, reason: str, at: float) -> None:
        self._conn.execute("DELETE FROM entries WHERE id = ?", (entry_id,))
        self._bump_high_water(entry_id)
        self._set_meta("last_time", at)
        self._conn.commit()
        self.records_remove += 1

    def recover(self) -> RecoveredState:
        entries = []
        for entry_id, blob, exp in self._conn.execute(
                "SELECT id, tup, exp FROM entries ORDER BY id"):
            entries.append((entry_id, decode_tuple_binary(blob), exp))
        high_water = int(self._get_meta("high_water") or 0)
        if entries:
            high_water = max(high_water, entries[-1][0])
        self.recoveries += 1
        self.records_replayed += len(entries)
        return RecoveredState(entries, high_water, self._get_meta("last_time"))

    def _rewrite(self, mirror: dict, at: float) -> None:
        self._conn.execute("DELETE FROM entries")
        for entry_id, (tup, exp) in sorted(mirror.items()):
            self._conn.execute(
                "INSERT INTO entries (id, tup, exp, at) VALUES (?, ?, ?, ?)",
                (entry_id, encode_tuple_binary(tup), exp, at))
            self._bump_high_water(entry_id)
        self._set_meta("last_time", at)
        self._conn.commit()
        self.compactions += 1

    def close(self) -> None:
        self._conn.close()

    def __len__(self) -> int:
        return self._conn.execute("SELECT COUNT(*) FROM entries").fetchone()[0]
