"""Filesystem abstraction for the durable storage backends.

Two implementations of one tiny contract:

* :class:`OsFS` — real files.  ``append`` opens, writes, flushes, and
  closes per call (modelling write-through: a record is durable once
  ``append`` returns), and ``replace`` writes a temp file *in the same
  directory* and ``os.replace``\\ s it into place, so a snapshot is either
  the complete old file or the complete new file, never a torn hybrid.
* :class:`MemoryFS` — a dict of paths to byte buffers, byte-compatible
  with :class:`OsFS` but deterministic and allocation-cheap, for the
  schedule explorer and property tests.  It adds fault-injection helpers
  (:meth:`MemoryFS.chop`, :meth:`MemoryFS.flip_bit`) for torn-tail and
  bit-rot experiments.
"""

from __future__ import annotations

import os
import tempfile
from typing import Optional


class OsFS:
    """Real-file storage with atomic replace and write-through appends."""

    def read(self, path: str) -> Optional[bytes]:
        """The file's full contents, or None if it does not exist."""
        try:
            with open(path, "rb") as handle:
                return handle.read()
        except FileNotFoundError:
            return None

    def append(self, path: str, data: bytes) -> None:
        """Append ``data``; durable (flushed + fsynced) on return."""
        with open(path, "ab") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())

    def replace(self, path: str, data: bytes) -> None:
        """Atomically replace ``path``'s contents with ``data``.

        The temp file lives in the target's directory so ``os.replace``
        is a same-filesystem rename — atomic on every POSIX filesystem.
        """
        directory = os.path.dirname(os.path.abspath(path))
        fd, tmp = tempfile.mkstemp(prefix=".tmp-", dir=directory)
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def truncate(self, path: str, size: int) -> None:
        """Cut the file down to ``size`` bytes."""
        with open(path, "r+b") as handle:
            handle.truncate(size)

    def delete(self, path: str) -> None:
        """Remove the file if present."""
        try:
            os.unlink(path)
        except FileNotFoundError:
            pass

    def exists(self, path: str) -> bool:
        return os.path.exists(path)

    def size(self, path: str) -> int:
        """File size in bytes (0 if absent)."""
        try:
            return os.path.getsize(path)
        except OSError:
            return 0


class MemoryFS:
    """In-memory path → bytes map, API-compatible with :class:`OsFS`."""

    def __init__(self) -> None:
        self.files: dict[str, bytearray] = {}

    def read(self, path: str) -> Optional[bytes]:
        data = self.files.get(path)
        return None if data is None else bytes(data)

    def append(self, path: str, data: bytes) -> None:
        self.files.setdefault(path, bytearray()).extend(data)

    def replace(self, path: str, data: bytes) -> None:
        self.files[path] = bytearray(data)

    def truncate(self, path: str, size: int) -> None:
        data = self.files.get(path)
        if data is not None:
            del data[size:]

    def delete(self, path: str) -> None:
        self.files.pop(path, None)

    def exists(self, path: str) -> bool:
        return path in self.files

    def size(self, path: str) -> int:
        data = self.files.get(path)
        return 0 if data is None else len(data)

    # ------------------------------------------------------------------
    # Fault injection (tests and the crash_recover explorer template)
    # ------------------------------------------------------------------
    def chop(self, path: str, nbytes: int) -> int:
        """Drop the last ``nbytes`` bytes (a torn tail); returns bytes cut."""
        data = self.files.get(path)
        if data is None or nbytes <= 0:
            return 0
        cut = min(nbytes, len(data))
        del data[len(data) - cut:]
        return cut

    def flip_bit(self, path: str, offset: int, bit: int = 0) -> bool:
        """Flip one bit in place (bit rot); False if out of range."""
        data = self.files.get(path)
        if data is None or not 0 <= offset < len(data):
            return False
        data[offset] ^= 1 << (bit & 7)
        return True
