"""The storage-backend trait: pluggable durability under a tuple space.

A backend mirrors the *durable* contents of one
:class:`~repro.tuples.space.LocalTupleSpace`: every resident deposit is
recorded (``record_out``), every removal — consume, lease expiry, or
anti-entropy reconciliation — is recorded (``record_remove``), and after a
crash :meth:`StorageBackend.recover` rebuilds the surviving entries so the
space can be repopulated.  Three implementations ship:

* :class:`MemoryBackend` — an in-process dict, the default and reference
  implementation (survives an instance crash, not a process death);
* :class:`~repro.tuples.storage.wal.WALBackend` — a CRC-framed append-only
  log with atomic snapshot compaction and torn-tail-tolerant replay;
* :class:`~repro.tuples.storage.sqlite.SqliteBackend` — a stdlib
  ``sqlite3`` table for spaces bigger than RAM.

Backends subscribe to the space's ``on_out``/``on_removed`` listeners, so
the space itself stays storage-agnostic; a space with no backend attached
behaves bit-identically to one that never heard of this module.

Recovery id discipline
----------------------
Durable entry ids are the store's entry ids, and a tuple keeps its id for
life: recovery restores each survivor under its **original** id, and the
fresh store's counter is bumped past the backend's high-water mark
(:meth:`repro.tuples.store.TupleStore.bump_ids`) so new deposits can never
collide with any id ever logged.  Both halves matter for the anti-entropy
rejoin (``docs/PROTOCOL.md`` section 10): peers witness consumed entry
ids, so a reused id could let a stale witness purge an innocent survivor,
and a *renumbered* survivor would dodge the witness that should purge it
the next time its removal record is torn off the log.
"""

from __future__ import annotations

from typing import Optional

from repro.tuples.model import Tuple
from repro.tuples.space import LocalTupleSpace

#: Tuple tags excluded from durability by default (infrastructure tuples
#: the owning instance recreates on every boot — see persistence.py — and
#: the short-leased in-space telemetry rows of repro.obs.telemetry, which
#: are ephemeral operational data a restarted node republishes itself).
DEFAULT_SKIP_TAGS: tuple = ("__space_info__", "_telemetry")


class RecoveredState:
    """What a backend salvaged from its durable representation."""

    __slots__ = ("entries", "high_water", "last_time")

    def __init__(self, entries: list, high_water: int,
                 last_time: Optional[float] = None) -> None:
        #: ``(durable_id, tuple, expires_at)`` triples, oldest first.
        self.entries = entries
        #: Highest durable id ever logged (including removed entries).
        self.high_water = high_water
        #: Latest record timestamp seen (approximates the crash time).
        self.last_time = last_time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<RecoveredState entries={len(self.entries)} "
                f"high_water={self.high_water}>")


class RecoveryStats:
    """Outcome of one lease-aware recovery into a live space."""

    __slots__ = ("restored", "reclaimed", "replayed", "torn_truncations")

    def __init__(self, restored: int = 0, reclaimed: int = 0,
                 replayed: int = 0, torn_truncations: int = 0) -> None:
        self.restored = restored
        self.reclaimed = reclaimed
        self.replayed = replayed
        self.torn_truncations = torn_truncations

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<RecoveryStats restored={self.restored} "
                f"reclaimed={self.reclaimed} torn={self.torn_truncations}>")


class StorageBackend:
    """Base class: listener plumbing + shared accounting for all backends.

    Subclasses implement :meth:`record_out`, :meth:`record_remove`,
    :meth:`recover`, and :meth:`_rewrite`; :meth:`compact` and
    :meth:`close` are optional.
    """

    def __init__(self) -> None:
        # accounting (read by Observability.observe_storage)
        self.records_out = 0
        self.records_remove = 0
        self.bytes_appended = 0
        self.compactions = 0
        self.recoveries = 0
        self.records_replayed = 0
        self.torn_truncations = 0
        self.torn_bytes = 0
        # listener state: only the currently bound space may log.  Old
        # incarnations keep their listener closures alive (lease-expiry
        # timers outlive a crash), so every callback re-checks the bind.
        self._space: Optional[LocalTupleSpace] = None
        self._listeners_on: set[int] = set()
        self._observed = False

    # ------------------------------------------------------------------
    # The durable contract (subclass responsibilities)
    # ------------------------------------------------------------------
    def record_out(self, entry_id: int, tup: Tuple,
                   expires_at: Optional[float], at: float) -> None:
        """Log a deposit; durable when this returns."""
        raise NotImplementedError

    def record_remove(self, entry_id: int, reason: str, at: float) -> None:
        """Log a removal (``consumed`` / ``expired`` / ``reconciled``)."""
        raise NotImplementedError

    def recover(self) -> RecoveredState:
        """Rebuild the surviving entries from the durable representation."""
        raise NotImplementedError

    def _rewrite(self, mirror: dict, at: float) -> None:
        """Replace the durable contents with ``{id: (tuple, expires_at)}``."""
        raise NotImplementedError

    def compact(self, at: float) -> None:
        """Fold the log into its compact form (no-op by default)."""

    def close(self) -> None:
        """Release any underlying resources (no-op by default)."""

    # ------------------------------------------------------------------
    # Space binding
    # ------------------------------------------------------------------
    def attach(self, space: LocalTupleSpace,
               skip_tags: tuple = DEFAULT_SKIP_TAGS) -> None:
        """Bind to ``space`` and start logging its deposits/removals.

        Transient entries (consumed at deposit by a blocked ``in``,
        ``entry_id == 0``) are skipped: they were never resident, so
        there is nothing to resurrect.  Holds are deliberately not
        logged — a two-phase claim cannot survive a power cycle, and the
        confirm (or the put-back) is what reaches the log.
        """
        self._space = space
        key = id(space)
        if key in self._listeners_on:
            return
        self._listeners_on.add(key)

        def on_out(entry) -> None:
            if self._space is not space or entry.removed or not entry.entry_id:
                return
            tup = entry.tuple
            if tup.fields and tup.fields[0] in skip_tags:
                return
            self.record_out(entry.entry_id, tup,
                            entry.meta.get("expires_at"), space.sim.now)

        def on_removed(entry, reason: str) -> None:
            if self._space is not space or not entry.entry_id:
                return
            tup = entry.tuple
            if tup.fields and tup.fields[0] in skip_tags:
                return
            self.record_remove(entry.entry_id, reason, space.sim.now)

        space.on_out(on_out)
        space.on_removed(on_removed)
        obs = getattr(space.sim, "obs", None)
        if obs is not None and not self._observed:
            self._observed = True
            obs.observe_storage(self, space.name)

    def detach(self) -> None:
        """Stop logging (the bound space crashed; its timers may still fire)."""
        self._space = None

    def rebind(self, space: LocalTupleSpace,
               skip_tags: tuple = DEFAULT_SKIP_TAGS) -> None:
        """Re-anchor the durable state to ``space``'s current contents.

        Called after recovery repopulated a fresh space: the durable
        representation is rewritten from the live store (one compaction —
        reclaimed leases fall out here without individual ``rm`` records)
        and listeners attach for the deposits and removals that follow.
        Quarantined (held) entries are included — they are logically
        present until the anti-entropy rejoin purges them, and a purge is
        logged like any removal.
        """
        mirror: dict = {}
        for entry in space.store:
            if entry.removed:
                continue
            tup = entry.tuple
            if tup.fields and tup.fields[0] in skip_tags:
                continue
            mirror[entry.entry_id] = (tup, entry.meta.get("expires_at"))
        self._rewrite(mirror, space.sim.now)
        self.attach(space, skip_tags)


class MemoryBackend(StorageBackend):
    """The in-process dict backend: the trait's reference implementation.

    Durable against an *instance* crash (the backend object outlives the
    space, exactly like the snapshot dict ``CrashRestartInjector`` kept
    before this package existed), not against process death.
    """

    def __init__(self) -> None:
        super().__init__()
        self._mirror: dict[int, tuple] = {}
        self._high_water = 0
        self._last_time: Optional[float] = None

    def record_out(self, entry_id: int, tup: Tuple,
                   expires_at: Optional[float], at: float) -> None:
        self._mirror[entry_id] = (tup, expires_at)
        self._high_water = max(self._high_water, entry_id)
        self._last_time = at
        self.records_out += 1

    def record_remove(self, entry_id: int, reason: str, at: float) -> None:
        self._mirror.pop(entry_id, None)
        self._high_water = max(self._high_water, entry_id)
        self._last_time = at
        self.records_remove += 1

    def recover(self) -> RecoveredState:
        self.recoveries += 1
        entries = [(entry_id, tup, expires_at)
                   for entry_id, (tup, expires_at)
                   in sorted(self._mirror.items())]
        self.records_replayed += len(entries)
        return RecoveredState(entries, self._high_water, self._last_time)

    def _rewrite(self, mirror: dict, at: float) -> None:
        self._mirror = dict(mirror)
        if mirror:
            self._high_water = max(self._high_water, max(mirror))
        self._last_time = at

    def __len__(self) -> int:
        return len(self._mirror)


def attach_backend(space: LocalTupleSpace, backend: StorageBackend,
                   skip_tags: tuple = DEFAULT_SKIP_TAGS) -> StorageBackend:
    """Wire ``backend`` under ``space`` and return it.

    Anything already resident in the space is snapshotted into the backend
    first (one compaction), then deposits and removals stream into the
    log.  Storage metrics register with the space's observability hub on
    first attach; a run that never attaches a backend exports a
    bit-identical registry.
    """
    backend.rebind(space, skip_tags)
    return backend
