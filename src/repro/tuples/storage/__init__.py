"""Pluggable durable storage for tuple spaces (the PR 6 durability layer).

See :mod:`repro.tuples.storage.base` for the backend trait and the
recovery id discipline, :mod:`repro.tuples.storage.wal` for the CRC-framed
write-ahead log, and ``docs/PROTOCOL.md`` section 10 for the on-disk
grammar and the anti-entropy rejoin protocol.
"""

from repro.tuples.storage.base import (
    DEFAULT_SKIP_TAGS,
    MemoryBackend,
    RecoveredState,
    RecoveryStats,
    StorageBackend,
    attach_backend,
)
from repro.tuples.storage.fs import MemoryFS, OsFS
from repro.tuples.storage.sqlite import SqliteBackend
from repro.tuples.storage.wal import WALBackend, inspect_wal

__all__ = [
    "DEFAULT_SKIP_TAGS",
    "MemoryBackend",
    "MemoryFS",
    "OsFS",
    "RecoveredState",
    "RecoveryStats",
    "SqliteBackend",
    "StorageBackend",
    "WALBackend",
    "attach_backend",
    "inspect_wal",
]
