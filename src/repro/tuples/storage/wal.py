"""Write-ahead log backend: CRC-framed records, atomic snapshot compaction.

Two files per space, ``<base>.wal`` and ``<base>.snap``:

* the **WAL** is a sequence of framed records, appended write-through —
  a record is durable once the append returns;
* the **snapshot** is a single framed record holding the full surviving
  entry set, written atomically (temp file + ``os.replace``) by
  :meth:`WALBackend.compact`; after the snapshot lands the WAL is reset.

Record framing (see ``docs/PROTOCOL.md`` section 10)::

    u32 length (LE) | u32 crc32(payload) (LE) | payload bytes

The payload is a codec-encoded dict — JSON (``codec="json"``) or the
binary LEB128 wire codec (``codec="binary"``)::

    {"op": "out",  "id": N, "tup": <tuple>, "exp": T|null, "at": T}
    {"op": "rm",   "id": N, "why": "consumed|expired|reconciled", "at": T}
    {"op": "snap", "at": T, "next": high_water, "entries": [
        {"id": N, "tup": <tuple>, "exp": T|null}, ...]}

Torn-write model and tolerance
------------------------------
Appends model write-through storage: a power cut can only damage the
record that was *in flight* — the final one.  Replay walks frames until
the first short, oversized, or CRC-failing frame, truncates the file at
the last good boundary (counting ``torn_truncations``/``torn_bytes``),
and keeps everything before it.  :meth:`WALBackend.tear_tail` injects
exactly that damage for chaos tests, clamped to the final record.

Replay is **idempotent by durable id**: the snapshot is authoritative for
every id at or below its high-water mark (``next``), so stale pre-snapshot
``out`` records are never re-applied; ``rm`` records always apply (an
absent id is a no-op).  That makes a kill *between* the snapshot replace
and the WAL reset harmless — the stale WAL re-applies over the snapshot
and lands in the same state (exercised via
``compact(_crash_after_snapshot=True)``) — even when the crash also tears
a record off the stale tail.
"""

from __future__ import annotations

import json
import struct
import zlib
from typing import Any, Optional

from repro.errors import StorageError
from repro.tuples.model import Tuple
from repro.tuples.serialization import (
    decode_payload_binary,
    decode_tuple,
    decode_tuple_binary,
    encode_payload_binary,
    encode_tuple,
    encode_tuple_binary,
)
from repro.tuples.storage.base import RecoveredState, StorageBackend
from repro.tuples.storage.fs import OsFS

#: ``u32 length | u32 crc32`` little-endian frame header.
_HEADER = struct.Struct("<II")

#: Sanity cap on one record; anything larger is treated as tail damage.
MAX_RECORD_BYTES = 1 << 26


class WALBackend(StorageBackend):
    """Append-only write-ahead log with periodic atomic compaction."""

    def __init__(self, base_path: str, fs: Optional[object] = None,
                 codec: str = "json", compact_every: int = 256) -> None:
        super().__init__()
        if codec not in ("json", "binary"):
            raise StorageError(f"unknown WAL codec {codec!r}")
        if compact_every < 0:
            raise StorageError("compact_every must be >= 0")
        self.fs = fs if fs is not None else OsFS()
        self.wal_path = f"{base_path}.wal"
        self.snap_path = f"{base_path}.snap"
        self.codec = codec
        #: Records between automatic compactions (0 disables auto-compact).
        self.compact_every = compact_every
        self._mirror: dict[int, tuple] = {}
        self._high_water = 0
        self._last_time: Optional[float] = None
        self._since_compact = 0
        self.snapshot_corrupt = 0

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def _enc_tuple(self, tup: Tuple) -> Any:
        if self.codec == "binary":
            return encode_tuple_binary(tup)
        return encode_tuple(tup)

    def _dec_tuple(self, data: Any) -> Tuple:
        if self.codec == "binary":
            return decode_tuple_binary(data)
        return decode_tuple(data)

    def _encode(self, record: dict) -> bytes:
        if self.codec == "binary":
            return encode_payload_binary(record)
        return json.dumps(record, separators=(",", ":"),
                          sort_keys=True).encode("utf-8")

    def _decode(self, payload: bytes) -> dict:
        if self.codec == "binary":
            return decode_payload_binary(payload)
        return json.loads(payload.decode("utf-8"))

    @staticmethod
    def _frame(payload: bytes) -> bytes:
        return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload

    # ------------------------------------------------------------------
    # The durable contract
    # ------------------------------------------------------------------
    def record_out(self, entry_id: int, tup: Tuple,
                   expires_at: Optional[float], at: float) -> None:
        record = {"op": "out", "id": entry_id, "tup": self._enc_tuple(tup),
                  "exp": expires_at, "at": at}
        self._append(record)
        self._mirror[entry_id] = (tup, expires_at)
        self._high_water = max(self._high_water, entry_id)
        self.records_out += 1
        self._maybe_compact(at)

    def record_remove(self, entry_id: int, reason: str, at: float) -> None:
        record = {"op": "rm", "id": entry_id, "why": reason, "at": at}
        self._append(record)
        self._mirror.pop(entry_id, None)
        self._high_water = max(self._high_water, entry_id)
        self.records_remove += 1
        self._maybe_compact(at)

    def _append(self, record: dict) -> None:
        frame = self._frame(self._encode(record))
        self.fs.append(self.wal_path, frame)
        self.bytes_appended += len(frame)
        self._last_time = record.get("at")
        self._since_compact += 1

    def _maybe_compact(self, at: float) -> None:
        if self.compact_every and self._since_compact >= self.compact_every:
            self.compact(at)

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    def compact(self, at: float, _crash_after_snapshot: bool = False) -> None:
        """Fold the WAL into one atomic snapshot, then reset the log.

        ``_crash_after_snapshot`` (tests only) returns between the two
        steps, simulating a kill after the snapshot landed but before the
        WAL was reset — the window idempotent replay exists for.
        """
        entries = [{"id": entry_id, "tup": self._enc_tuple(tup), "exp": exp}
                   for entry_id, (tup, exp) in sorted(self._mirror.items())]
        snapshot = {"op": "snap", "at": at, "next": self._high_water,
                    "entries": entries}
        self.fs.replace(self.snap_path, self._frame(self._encode(snapshot)))
        self.compactions += 1
        if _crash_after_snapshot:
            return
        self.fs.replace(self.wal_path, b"")
        self._since_compact = 0

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def recover(self) -> RecoveredState:
        """Snapshot + WAL replay with torn-tail detection and truncation."""
        mirror: dict[int, tuple] = {}
        high = 0
        last_time: Optional[float] = None
        snapshot = self._read_snapshot()
        snap_next = 0
        if snapshot is not None:
            for item in snapshot["entries"]:
                mirror[item["id"]] = (self._dec_tuple(item["tup"]),
                                      item.get("exp"))
                high = max(high, item["id"])
            snap_next = max(high, snapshot.get("next", 0))
            high = snap_next
            last_time = snapshot.get("at")
        data = self.fs.read(self.wal_path) or b""
        records, good_offset = self._scan(data)
        if good_offset < len(data):
            self.torn_truncations += 1
            self.torn_bytes += len(data) - good_offset
            self.fs.truncate(self.wal_path, good_offset)
        for record in records:
            op = record.get("op")
            entry_id = record.get("id", 0)
            if op == "out":
                # Idempotent over a stale post-compaction WAL: the snapshot
                # is authoritative for every id at or below its high-water
                # mark, so a pre-snapshot `out` is never re-applied — the
                # entry either sits in the snapshot already or was removed
                # before the snapshot was cut (and must stay removed, even
                # if its own `rm` record was later torn off the tail).
                if entry_id > snap_next and entry_id not in mirror:
                    mirror[entry_id] = (self._dec_tuple(record["tup"]),
                                        record.get("exp"))
            elif op == "rm":
                # Removals are always applied: a post-snapshot `rm` may
                # target an entry the snapshot holds, and a pre-snapshot
                # one pops an id the snapshot already excludes (no-op).
                mirror.pop(entry_id, None)
            high = max(high, entry_id)
            at = record.get("at")
            if at is not None:
                last_time = at if last_time is None else max(last_time, at)
        self._mirror = mirror
        self._high_water = max(self._high_water, high)
        self._last_time = last_time
        self._since_compact = 0
        self.recoveries += 1
        self.records_replayed += len(records)
        entries = [(entry_id, tup, exp)
                   for entry_id, (tup, exp) in sorted(mirror.items())]
        return RecoveredState(entries, self._high_water, last_time)

    def _read_snapshot(self) -> Optional[dict]:
        data = self.fs.read(self.snap_path)
        if not data:
            return None
        records, good_offset = self._scan(data)
        # The snapshot is written atomically, so damage here means
        # external corruption, not a torn write; salvage what the WAL
        # holds rather than refusing to boot.
        if not records or records[0].get("op") != "snap":
            self.snapshot_corrupt += 1
            return None
        return records[0]

    def _scan(self, data: bytes) -> "tuple[list[dict], int]":
        """Decode frames until the first damaged one; returns (records, offset)."""
        records: list[dict] = []
        offset = 0
        size = len(data)
        while offset + _HEADER.size <= size:
            length, crc = _HEADER.unpack_from(data, offset)
            start = offset + _HEADER.size
            if length > MAX_RECORD_BYTES or start + length > size:
                break  # short or oversized frame: torn tail
            payload = data[start:start + length]
            if zlib.crc32(payload) != crc:
                break  # damaged in flight
            try:
                record = self._decode(payload)
            except Exception:
                break  # CRC-passing garbage (wrong codec / deep rot)
            if not isinstance(record, dict):
                break
            records.append(record)
            offset = start + length
        return records, offset

    def _rewrite(self, mirror: dict, at: float) -> None:
        self._mirror = dict(mirror)
        if mirror:
            self._high_water = max(self._high_water, max(mirror))
        self.compact(at)

    # ------------------------------------------------------------------
    # Fault injection (chaos tests)
    # ------------------------------------------------------------------
    def tear_tail(self, nbytes: int) -> Optional[dict]:
        """Simulate a power cut mid-append of the final record.

        Chops up to ``nbytes`` bytes off the WAL, clamped so only the
        final record is damaged (appends are write-through, so earlier
        records were already durable when the power died).  Returns the
        decoded record that was torn (its operation must be considered
        *unacknowledged* by the layer above), or None if the WAL holds no
        complete record to tear.
        """
        if nbytes <= 0:
            return None
        data = self.fs.read(self.wal_path) or b""
        records, good_offset = self._scan(data)
        if not records or good_offset == 0:
            return None
        # Find the final record's start offset by rescanning lengths.
        offset = 0
        last_start = 0
        while offset < good_offset:
            length, _ = _HEADER.unpack_from(data, offset)
            last_start = offset
            offset += _HEADER.size + length
        span = good_offset - last_start
        cut = min(nbytes, span)
        self.fs.truncate(self.wal_path, len(data) - cut)
        torn = records[-1]
        if torn.get("op") == "out":
            self._mirror.pop(torn.get("id", 0), None)
        return torn


def inspect_wal(base_path: str, fs: Optional[object] = None,
                codec: str = "json", max_records: int = 200) -> dict:
    """Read-only diagnosis of a WAL + snapshot pair (``repro wal inspect``)."""
    backend = WALBackend(base_path, fs=fs, codec=codec, compact_every=0)
    snapshot = backend._read_snapshot()
    data = backend.fs.read(backend.wal_path) or b""
    records, good_offset = backend._scan(data)
    torn_bytes = len(data) - good_offset
    live: dict[int, dict] = {}
    snap_next = 0
    if snapshot is not None:
        for item in snapshot["entries"]:
            live[item["id"]] = item
            snap_next = max(snap_next, item["id"])
        snap_next = max(snap_next, snapshot.get("next", 0))
    for record in records:
        if record.get("op") == "out":
            if record["id"] > snap_next:
                live.setdefault(record["id"], record)
        elif record.get("op") == "rm":
            live.pop(record.get("id", 0), None)
    return {
        "wal_path": backend.wal_path,
        "snap_path": backend.snap_path,
        "wal_bytes": len(data),
        "wal_records": len(records),
        "records": records[:max_records],
        "snapshot_entries": (len(snapshot["entries"])
                             if snapshot is not None else None),
        "snapshot_at": snapshot.get("at") if snapshot is not None else None,
        "torn_bytes": torn_bytes,
        "torn": torn_bytes > 0,
        "live_entries": len(live),
    }
