"""Wire codecs for tuples, patterns, and whole frame payloads.

Tiamat instances exchange tuples and antituples over the (simulated)
network; this module defines the encodings plus :func:`encoded_size`,
which the network layer uses for byte accounting and the lease manager
uses for storage accounting.

Two codecs are provided, selected by name (``get_codec``):

``json`` (the original, and the default)
    A tag-first, JSON-representable encoding — human-readable and
    loosely-coupled, at the price of base64 for bytes fields and JSON
    framing overhead on every frame::

        field:   ["b", true] | ["i", 5] | ["f", 2.5] | ["s", "x"]
                 | ["y", "<base64>"] | ["t", [field, ...]]
        tuple:   ["t", [field, ...]]
        spec:    ["A", field] | ["F", "int"] | ["*"] | ["R", lo, hi]
        pattern: ["p", [spec, ...]]

``binary``
    A compact length-prefixed binary encoding (one tag byte per value,
    LEB128 varints for lengths and integers, raw UTF-8/byte runs, IEEE-754
    doubles).  It covers the full payload model — tuples, patterns, and the
    JSON-shaped frame dicts the protocols exchange — and round-trips
    bit-identically with the JSON codec over every value in the tuple
    model (property-tested in ``tests/test_codec_cross.py``).  See
    ``docs/PROTOCOL.md`` §6 for the byte-level layout.

Both codecs expose the same trio used by the stack: ``encode_tuple`` /
``decode_tuple`` (and pattern equivalents) plus :meth:`WireCodec.encoded_size`
so byte accounting is always consistent with the wire representation the
network was configured with.
"""

from __future__ import annotations

import base64
import json
import struct
from typing import Any, Union

from repro.errors import CodecMismatchError, SerializationError
from repro.tuples.model import ANY, Actual, Field, Formal, Pattern, Range, Tuple

_FORMAL_TYPES = {
    "bool": bool,
    "int": int,
    "float": float,
    "str": str,
    "bytes": bytes,
    "Tuple": Tuple,
}


def _encode_field(value: Any) -> list:
    if isinstance(value, Tuple):
        return ["t", [_encode_field(f) for f in value.fields]]
    if isinstance(value, bool):
        return ["b", value]
    if isinstance(value, int):
        return ["i", value]
    if isinstance(value, float):
        return ["f", value]
    if isinstance(value, str):
        return ["s", value]
    if isinstance(value, bytes):
        return ["y", base64.b64encode(value).decode("ascii")]
    raise SerializationError(f"cannot encode field {value!r}")


def _decode_field(data: Any) -> Any:
    if not isinstance(data, list) or not data:
        raise SerializationError(f"malformed field encoding: {data!r}")
    tag = data[0]
    if tag == "t":
        return Tuple(*[_decode_field(f) for f in data[1]])
    if tag == "b":
        return bool(data[1])
    if tag == "i":
        return int(data[1])
    if tag == "f":
        return float(data[1])
    if tag == "s":
        return str(data[1])
    if tag == "y":
        return base64.b64decode(data[1])
    raise SerializationError(f"unknown field tag {tag!r}")


def encode_tuple(tup: Tuple) -> list:
    """Encode a tuple to its JSON-representable form."""
    return _encode_field(tup)


def decode_tuple(data: Any) -> Tuple:
    """Decode a tuple from its JSON-representable form.

    Any malformation — wrong tags, wrong value types, truncated lists,
    invalid base64 — raises :class:`SerializationError`: frames arrive
    from arbitrary peers and must never crash the dispatcher with an
    untyped exception.
    """
    try:
        value = _decode_field(data)
    except SerializationError:
        raise
    except Exception as exc:
        raise SerializationError(f"malformed tuple encoding: {exc}") from exc
    if not isinstance(value, Tuple):
        raise SerializationError(f"encoded value is not a tuple: {data!r}")
    return value


def _encode_spec(spec: Field) -> list:
    if isinstance(spec, Actual):
        return ["A", _encode_field(spec.value)]
    if isinstance(spec, Formal):
        return ["F", spec.type.__name__]
    if spec == ANY:
        return ["*"]
    if isinstance(spec, Range):
        return ["R", spec.lo, spec.hi]
    raise SerializationError(f"cannot encode pattern spec {spec!r}")


def _decode_spec(data: Any) -> Field:
    if not isinstance(data, list) or not data:
        raise SerializationError(f"malformed spec encoding: {data!r}")
    tag = data[0]
    if tag == "A":
        return Actual(_decode_field(data[1]))
    if tag == "F":
        type_ = _FORMAL_TYPES.get(data[1])
        if type_ is None:
            raise SerializationError(f"unknown formal type {data[1]!r}")
        return Formal(type_)
    if tag == "*":
        return ANY
    if tag == "R":
        return Range(data[1], data[2])
    raise SerializationError(f"unknown spec tag {tag!r}")


def encode_pattern(pattern: Pattern) -> list:
    """Encode a pattern (antituple) to its JSON-representable form."""
    return ["p", [_encode_spec(s) for s in pattern.specs]]


def decode_pattern(data: Any) -> Pattern:
    """Decode a pattern from its JSON-representable form.

    Malformed input raises :class:`SerializationError` (see
    :func:`decode_tuple` for why the conversion is strict).
    """
    if not isinstance(data, list) or len(data) != 2 or data[0] != "p":
        raise SerializationError(f"malformed pattern encoding: {data!r}")
    try:
        return Pattern(*[_decode_spec(s) for s in data[1]])
    except SerializationError:
        raise
    except Exception as exc:
        raise SerializationError(f"malformed pattern encoding: {exc}") from exc


def encoded_size(value: Any) -> int:
    """Wire size in bytes of a tuple, pattern, or already-encoded payload.

    This is the *JSON* codec's accounting (the historical default); the
    network layer asks its configured :class:`WireCodec` instead, so frames
    on a binary-codec network are charged the binary size.
    """
    return JSON_CODEC.encoded_size(value)


# ===========================================================================
# The binary codec: compact length-prefixed encoding
# ===========================================================================
# One tag byte per value; LEB128 varints for all lengths/counts and for
# integers (zigzag-mapped); IEEE-754 big-endian doubles for floats; raw
# UTF-8 / byte runs (no base64).  Tag values are part of the wire format —
# see docs/PROTOCOL.md §6 before renumbering anything.

_B_NONE = 0x00
_B_FALSE = 0x01
_B_TRUE = 0x02
_B_INT = 0x03
_B_FLOAT = 0x04
_B_STR = 0x05
_B_BYTES = 0x06
_B_LIST = 0x07
_B_DICT = 0x08
_B_TUPLE = 0x09
_B_SPEC_ACTUAL = 0x10
_B_SPEC_FORMAL = 0x11
_B_SPEC_ANY = 0x12
_B_SPEC_RANGE = 0x13
_B_PATTERN = 0x14

#: Formal type indexes for the one-byte ``SPEC_FORMAL`` operand.
_FORMAL_INDEX = {"bool": 0, "int": 1, "float": 2, "str": 3, "bytes": 4,
                 "Tuple": 5}
_FORMAL_BY_INDEX = {i: _FORMAL_TYPES[name] for name, i in _FORMAL_INDEX.items()}

_pack_double = struct.Struct(">d").pack
_unpack_double = struct.Struct(">d").unpack_from


def _append_varint(buf: bytearray, value: int) -> None:
    """Append an unsigned LEB128 varint."""
    while value > 0x7F:
        buf.append((value & 0x7F) | 0x80)
        value >>= 7
    buf.append(value)


def _read_varint(data: bytes, pos: int) -> "tuple[int, int]":
    """Read an unsigned LEB128 varint; returns (value, new_pos)."""
    result = 0
    shift = 0
    length = len(data)
    while True:
        if pos >= length:
            raise SerializationError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 448:  # 64 bytes of continuation: not a plausible length
            raise SerializationError("varint too long")


def _append_value(buf: bytearray, value: Any) -> None:
    """Append one payload value (tag byte + operands) to ``buf``."""
    if value is None:
        buf.append(_B_NONE)
    elif value is True:
        buf.append(_B_TRUE)
    elif value is False:
        buf.append(_B_FALSE)
    elif isinstance(value, Tuple):
        wire = value._wire
        if wire is not None:
            buf += wire
        else:
            mark = len(buf)
            _append_tuple(buf, value)
            value._wire = bytes(memoryview(buf)[mark:])
    elif isinstance(value, int):
        buf.append(_B_INT)
        # zigzag-map so small negatives stay small on the wire
        _append_varint(buf, value << 1 if value >= 0 else ~(value << 1))
    elif isinstance(value, float):
        buf.append(_B_FLOAT)
        buf += _pack_double(value)
    elif isinstance(value, str):
        encoded = value.encode("utf-8")
        buf.append(_B_STR)
        _append_varint(buf, len(encoded))
        buf += encoded
    elif isinstance(value, bytes):
        buf.append(_B_BYTES)
        _append_varint(buf, len(value))
        buf += value
    elif isinstance(value, list):
        buf.append(_B_LIST)
        _append_varint(buf, len(value))
        for item in value:
            _append_value(buf, item)
    elif isinstance(value, dict):
        buf.append(_B_DICT)
        _append_varint(buf, len(value))
        for key, item in value.items():
            if not isinstance(key, str):
                raise SerializationError(
                    f"binary payload dict keys must be str, got {key!r}")
            encoded = key.encode("utf-8")
            _append_varint(buf, len(encoded))
            buf += encoded
            _append_value(buf, item)
    elif isinstance(value, Field):
        _append_spec(buf, value)
    elif isinstance(value, Pattern):
        buf.append(_B_PATTERN)
        specs = value.specs
        _append_varint(buf, len(specs))
        for spec in specs:
            _append_spec(buf, spec)
    else:
        raise SerializationError(f"cannot binary-encode {value!r}")


def _append_tuple(buf: bytearray, value: Tuple) -> None:
    """Inlined tuple encoder: the hottest path on a binary wire.

    Exact-type dispatch (``type(f) is str`` ...) avoids the generic
    encoder's isinstance chain and per-field function call; semantics are
    identical because tuple fields are validated at construction.
    """
    buf.append(_B_TUPLE)
    fields = value.fields
    _append_varint(buf, len(fields))
    for field in fields:
        cls = type(field)
        if cls is str:
            encoded = field.encode("utf-8")
            buf.append(_B_STR)
            n = len(encoded)
            if n < 0x80:
                buf.append(n)
            else:
                _append_varint(buf, n)
            buf += encoded
        elif cls is int:
            buf.append(_B_INT)
            raw = field << 1 if field >= 0 else ~(field << 1)
            if raw < 0x80:
                buf.append(raw)
            else:
                _append_varint(buf, raw)
        elif cls is float:
            buf.append(_B_FLOAT)
            buf += _pack_double(field)
        elif cls is bool:
            buf.append(_B_TRUE if field else _B_FALSE)
        elif cls is bytes:
            buf.append(_B_BYTES)
            n = len(field)
            if n < 0x80:
                buf.append(n)
            else:
                _append_varint(buf, n)
            buf += field
        else:  # nested Tuple (possibly a subclass)
            _append_tuple(buf, field)


def _append_spec(buf: bytearray, spec: Field) -> None:
    if isinstance(spec, Actual):
        buf.append(_B_SPEC_ACTUAL)
        _append_value(buf, spec.value)
    elif isinstance(spec, Formal):
        buf.append(_B_SPEC_FORMAL)
        buf.append(_FORMAL_INDEX[spec.type.__name__])
    elif spec == ANY:
        buf.append(_B_SPEC_ANY)
    elif isinstance(spec, Range):
        buf.append(_B_SPEC_RANGE)
        _append_value(buf, spec.lo)
        _append_value(buf, spec.hi)
    else:
        raise SerializationError(f"cannot binary-encode pattern spec {spec!r}")


def _read_value(data: bytes, pos: int) -> "tuple[Any, int]":
    length = len(data)
    if pos >= length:
        raise SerializationError("truncated binary value")
    tag = data[pos]
    pos += 1
    if tag == _B_NONE:
        return None, pos
    if tag == _B_TRUE:
        return True, pos
    if tag == _B_FALSE:
        return False, pos
    if tag == _B_INT:
        raw, pos = _read_varint(data, pos)
        return (raw >> 1) ^ -(raw & 1), pos
    if tag == _B_FLOAT:
        if pos + 8 > length:
            raise SerializationError("truncated float")
        return _unpack_double(data, pos)[0], pos + 8
    if tag == _B_STR:
        n, pos = _read_varint(data, pos)
        if pos + n > length:
            raise SerializationError("truncated string")
        # str(x, "utf-8") decodes bytes, bytearray *and* memoryview
        # slices, so readers stay buffer-agnostic (.decode does not
        # exist on memoryview).
        return str(data[pos:pos + n], "utf-8"), pos + n
    if tag == _B_BYTES:
        n, pos = _read_varint(data, pos)
        if pos + n > length:
            raise SerializationError("truncated bytes")
        return bytes(data[pos:pos + n]), pos + n
    if tag == _B_LIST:
        n, pos = _read_varint(data, pos)
        items = []
        for _ in range(n):
            item, pos = _read_value(data, pos)
            items.append(item)
        return items, pos
    if tag == _B_DICT:
        return _read_dict_fast(data, pos, length)
    if tag == _B_TUPLE:
        start = pos
        end = _skip_tuple(data, pos)
        if end > length:
            raise SerializationError("truncated nested tuple")
        if end - start < _NESTED_INTERN_KEY_MAX:
            key = bytes(data[start - 1:end])
            value = _nested_intern.get(key)
            if value is None:
                value, _ = _read_tuple_fast(data, start, end)
                value._wire = key
                if len(_nested_intern) >= _NESTED_INTERN_MAX:
                    _nested_intern.clear()
                _nested_intern[key] = value
            return value, end
        return _read_tuple_fast(data, start, end)
    if tag == _B_PATTERN:
        n, pos = _read_varint(data, pos)
        specs = []
        for _ in range(n):
            spec, pos = _read_spec(data, pos)
            specs.append(spec)
        return Pattern(*specs), pos
    if tag in (_B_SPEC_ACTUAL, _B_SPEC_FORMAL, _B_SPEC_ANY, _B_SPEC_RANGE):
        return _read_spec(data, pos - 1)
    raise SerializationError(f"unknown binary tag 0x{tag:02x}")


#: Bounded intern table for decoded tuples keyed by their exact tagged
#: wire bytes.  Tuples on a real wire repeat heavily — nested sub-records
#: (space handles, reply-to addresses), and whole tuples on retransmit,
#: dedup-replay, and fan-out paths — so a decode that has seen the bytes
#: before returns the shared immutable Tuple instead of re-parsing it.
#: The key is the full tagged form, so it doubles as the tuple's memoized
#: ``_wire`` encoding.  Wiped wholesale when full: cheap, and a full wipe
#: keeps the steady state hot without LRU bookkeeping on the fast path.
_nested_intern: "dict[bytes, Tuple]" = {}
_NESTED_INTERN_MAX = 1024
#: Nested tuples longer than this on the wire are not interned (the key
#: copy would cost more than it saves on plausible hit rates).
_NESTED_INTERN_KEY_MAX = 256


def _skip_tuple(data, pos: int) -> int:
    """Advance past a tuple body (after its ``_B_TUPLE`` tag byte).

    A structure-only scan — no object construction, no UTF-8 decode —
    used to find a nested tuple's wire extent so the intern table can be
    consulted *before* paying for a full parse.  Trusts nothing it does
    not need to: a malformed body raises here or in the full decode that
    follows a cache miss.
    """
    nf = data[pos]
    pos += 1
    if nf > 0x7F:
        nf, pos = _read_varint(data, pos - 1)
    while nf:
        nf -= 1
        tag = data[pos]
        pos += 1
        if tag == _B_INT:
            while data[pos] & 0x80:
                pos += 1
            pos += 1
        elif tag == _B_STR or tag == _B_BYTES:
            n = data[pos]
            pos += 1
            if n > 0x7F:
                n, pos = _read_varint(data, pos - 1)
            pos += n
        elif tag == _B_FLOAT:
            pos += 8
        elif tag == _B_TUPLE:
            pos = _skip_tuple(data, pos)
        elif tag != _B_TRUE and tag != _B_FALSE:
            raise SerializationError(
                f"tag 0x{tag:02x} is not a tuple field value")
    return pos


def _read_tuple_fast(data, pos: int, length: int) -> "tuple[Tuple, int]":
    """Decode a tuple body (after its tag byte) via the trusted fast path.

    Only *field-value* tags are admitted inside a tuple, which proves field
    validity by construction and licenses :meth:`Tuple._from_trusted` —
    skipping the per-field re-validation of the public constructor.

    This is the hottest loop on a binary wire, hand-inlined accordingly:
    ``data`` may be ``bytes``, ``bytearray`` or ``memoryview`` (indexing
    yields ints and ``str(slice, "utf-8")`` works on all three, so frames
    decode straight out of a receive buffer with no intermediate copy);
    varints take the one-byte fast path inline; tuples are built through
    ``object.__new__`` with direct slot stores.  Truncations surface as
    ``IndexError``/``struct.error`` and are converted to
    :class:`SerializationError` by the public entry points — except
    slices, which truncate silently and therefore keep explicit bounds
    checks.
    """
    nf = data[pos]
    pos += 1
    if nf > 0x7F:
        nf, pos = _read_varint(data, pos - 1)
    if nf == 0:
        raise SerializationError("a tuple must have at least one field")
    fields = []
    append = fields.append
    interned = _nested_intern
    while nf:
        nf -= 1
        tag = data[pos]
        pos += 1
        if tag == _B_STR:
            n = data[pos]
            pos += 1
            if n > 0x7F:
                n, pos = _read_varint(data, pos - 1)
            end = pos + n
            if end > length:
                raise SerializationError("truncated string")
            append(str(data[pos:end], "utf-8"))
            pos = end
        elif tag == _B_INT:
            raw = data[pos]
            pos += 1
            if raw > 0x7F:
                raw, pos = _read_varint(data, pos - 1)
            append((raw >> 1) ^ -(raw & 1))
        elif tag == _B_FLOAT:
            append(_unpack_double(data, pos)[0])
            pos += 8
        elif tag == _B_TRUE:
            append(True)
        elif tag == _B_FALSE:
            append(False)
        elif tag == _B_BYTES:
            n = data[pos]
            pos += 1
            if n > 0x7F:
                n, pos = _read_varint(data, pos - 1)
            end = pos + n
            if end > length:
                raise SerializationError("truncated bytes")
            append(bytes(data[pos:end]))
            pos = end
        elif tag == _B_TUPLE:
            start = pos
            pos = _skip_tuple(data, pos)
            if pos > length:
                raise SerializationError("truncated nested tuple")
            if pos - start < _NESTED_INTERN_KEY_MAX:
                # Key on the full tagged form so the key doubles as the
                # nested tuple's memoized wire bytes.
                key = bytes(data[start - 1:pos])
                nested = interned.get(key)
                if nested is None:
                    nested, _ = _read_tuple_fast(data, start, pos)
                    nested._wire = key
                    if len(interned) >= _NESTED_INTERN_MAX:
                        interned.clear()
                    interned[key] = nested
            else:
                nested, _ = _read_tuple_fast(data, start, pos)
            append(nested)
        else:
            raise SerializationError(
                f"tag 0x{tag:02x} is not a tuple field value")
    if pos > length:
        raise SerializationError("truncated tuple")
    tup = _T_new(Tuple)
    tup._fields = tuple(fields)
    tup._hash = None
    tup._wire = None
    return tup, pos


_T_new = object.__new__


def _read_tuple(data, pos: int) -> "tuple[Tuple, int]":
    """Compatibility wrapper: decode a tuple body at ``pos``."""
    return _read_tuple_fast(data, pos, len(data))


def _read_dict_fast(data, pos: int, length: int) -> "tuple[dict, int]":
    """Decode a dict body (after its ``_B_DICT`` tag byte), hand-inlined.

    Frame payloads are dicts — one per received datagram on a binary
    wire — so the dict walk gets the same treatment as the tuple walk:
    inline one-byte varint fast paths, inline decode of the common value
    shapes (short strings, ints, bools, interned tuples), and a fallback
    to :func:`_read_value` for everything rarer.
    """
    n = data[pos]
    pos += 1
    if n > 0x7F:
        n, pos = _read_varint(data, pos - 1)
    out: dict = {}
    interned = _nested_intern
    while n:
        n -= 1
        klen = data[pos]
        pos += 1
        if klen > 0x7F:
            klen, pos = _read_varint(data, pos - 1)
        kend = pos + klen
        if kend > length:
            raise SerializationError("truncated dict key")
        key = str(data[pos:kend], "utf-8")
        pos = kend
        tag = data[pos]
        pos += 1
        if tag == _B_STR:
            m = data[pos]
            pos += 1
            if m > 0x7F:
                m, pos = _read_varint(data, pos - 1)
            end = pos + m
            if end > length:
                raise SerializationError("truncated string")
            out[key] = str(data[pos:end], "utf-8")
            pos = end
        elif tag == _B_INT:
            raw = data[pos]
            pos += 1
            if raw > 0x7F:
                raw, pos = _read_varint(data, pos - 1)
            out[key] = (raw >> 1) ^ -(raw & 1)
        elif tag == _B_TUPLE:
            start = pos
            pos = _skip_tuple(data, pos)
            if pos > length:
                raise SerializationError("truncated nested tuple")
            if pos - start < _NESTED_INTERN_KEY_MAX:
                wire_key = bytes(data[start - 1:pos])
                nested = interned.get(wire_key)
                if nested is None:
                    nested, _ = _read_tuple_fast(data, start, pos)
                    nested._wire = wire_key
                    if len(interned) >= _NESTED_INTERN_MAX:
                        interned.clear()
                    interned[wire_key] = nested
                out[key] = nested
            else:
                out[key], _ = _read_tuple_fast(data, start, pos)
        elif tag == _B_TRUE:
            out[key] = True
        elif tag == _B_FALSE:
            out[key] = False
        elif tag == _B_NONE:
            out[key] = None
        else:
            out[key], pos = _read_value(data, pos - 1)
    return out, pos


def _read_spec(data: bytes, pos: int) -> "tuple[Field, int]":
    if pos >= len(data):
        raise SerializationError("truncated spec")
    tag = data[pos]
    pos += 1
    if tag == _B_SPEC_ACTUAL:
        value, pos = _read_value(data, pos)
        return Actual(value), pos
    if tag == _B_SPEC_FORMAL:
        if pos >= len(data):
            raise SerializationError("truncated formal spec")
        type_ = _FORMAL_BY_INDEX.get(data[pos])
        if type_ is None:
            raise SerializationError(f"unknown formal index {data[pos]}")
        return Formal(type_), pos + 1
    if tag == _B_SPEC_ANY:
        return ANY, pos
    if tag == _B_SPEC_RANGE:
        lo, pos = _read_value(data, pos)
        hi, pos = _read_value(data, pos)
        return Range(lo, hi), pos
    raise SerializationError(f"unknown spec tag 0x{tag:02x}")


def encode_tuple_binary(tup: Tuple) -> bytes:
    """Encode a tuple to the compact binary wire form.

    The result is memoized on the (immutable) tuple, so encoding the same
    tuple again — the relay, retransmit, and multi-peer fan-out paths —
    returns the cached bytes without re-walking the fields.
    """
    if not isinstance(tup, Tuple):
        raise SerializationError(f"not a tuple: {tup!r}")
    wire = tup._wire
    if wire is None:
        buf = bytearray()
        _append_tuple(buf, tup)
        tup._wire = wire = bytes(buf)
    return wire


def encode_tuple_into(buf: bytearray, tup: Tuple) -> None:
    """Append ``tup``'s binary wire form to a caller-owned buffer.

    The zero-copy encode path: callers that assemble whole frames in a
    pooled ``bytearray`` (see :mod:`repro.runtime.aio`) skip the
    intermediate ``bytes`` object entirely; a memoized tuple appends as
    one memcpy.
    """
    wire = tup._wire
    if wire is not None:
        buf += wire
    else:
        mark = len(buf)
        _append_tuple(buf, tup)
        tup._wire = bytes(memoryview(buf)[mark:])


def encode_payload_into(buf: bytearray, payload: dict) -> None:
    """Append a whole frame payload dict to a caller-owned buffer.

    Same contract as :func:`encode_payload_binary` minus the terminal
    ``bytes()`` copy: the aio runtime encodes frames straight into pooled
    send buffers and hands the kernel a ``memoryview`` of the result.
    """
    if not isinstance(payload, dict):
        raise SerializationError(f"payload must be a dict, got {payload!r}")
    _append_value(buf, payload)


Buffer = Union[bytes, bytearray, memoryview]


def decode_tuple_binary(data: Buffer) -> Tuple:
    """Decode a tuple from the binary wire form (strict; see module doc).

    Accepts ``bytes``, ``bytearray`` or ``memoryview`` and decodes in
    place — no intermediate copy of ``data`` is made.  Whole datagrams
    repeat on retransmit and replay paths, so top-level decodes go
    through the same bounded intern table as nested tuples: a second
    decode of identical bytes is one dict lookup.
    """
    if type(data) is bytes and data and data[0] == _B_TUPLE \
            and len(data) < _NESTED_INTERN_KEY_MAX:
        cached = _nested_intern.get(data)
        if cached is not None:
            return cached
    try:
        if data[0] == _B_TUPLE:
            value, pos = _read_tuple_fast(data, 1, len(data))
        else:
            value, pos = _read_value(data, 0)
    except SerializationError:
        raise
    except Exception as exc:
        raise SerializationError(f"malformed binary tuple: {exc}") from exc
    if not isinstance(value, Tuple) or pos != len(data):
        raise SerializationError("encoded value is not exactly one tuple")
    if type(data) is bytes:
        if value._wire is None:
            value._wire = data
        if data[0] == _B_TUPLE and len(data) < _NESTED_INTERN_KEY_MAX:
            if len(_nested_intern) >= _NESTED_INTERN_MAX:
                _nested_intern.clear()
            _nested_intern[data] = value
    return value


def decode_tuple_buffer(data: Buffer, pos: int = 0) -> "tuple[Tuple, int]":
    """Decode one tuple at ``pos`` inside a larger buffer.

    Returns ``(tuple, end)`` where ``end`` is the offset one past the
    tuple's wire form, so frame parsers can walk a receive buffer without
    slicing it per value.  Strict: malformation raises
    :class:`SerializationError`.
    """
    try:
        if data[pos] != _B_TUPLE:
            raise SerializationError(
                f"expected a tuple at offset {pos} "
                f"(tag 0x{data[pos]:02x})")
        return _read_tuple_fast(data, pos + 1, len(data))
    except SerializationError:
        raise
    except Exception as exc:
        raise SerializationError(f"malformed binary tuple: {exc}") from exc


def encode_pattern_binary(pattern: Pattern) -> bytes:
    """Encode a pattern (antituple) to the binary wire form."""
    if not isinstance(pattern, Pattern):
        raise SerializationError(f"not a pattern: {pattern!r}")
    buf = bytearray()
    _append_value(buf, pattern)
    return bytes(buf)


def decode_pattern_binary(data: Buffer) -> Pattern:
    """Decode a pattern from the binary wire form (strict)."""
    try:
        value, pos = _read_value(data, 0)
    except SerializationError:
        raise
    except Exception as exc:
        raise SerializationError(f"malformed binary pattern: {exc}") from exc
    if not isinstance(value, Pattern) or pos != len(data):
        raise SerializationError("encoded value is not exactly one pattern")
    return value


def encode_payload_binary(payload: dict) -> bytes:
    """Encode a whole frame payload dict to the binary wire form."""
    if not isinstance(payload, dict):
        raise SerializationError(f"payload must be a dict, got {payload!r}")
    buf = bytearray()
    _append_value(buf, payload)
    return bytes(buf)


def decode_payload_binary(data: Buffer) -> dict:
    """Decode a frame payload dict from the binary wire form (strict).

    Buffer-aware: a ``memoryview`` over a pooled receive buffer decodes
    with no intermediate ``bytes`` copy of the frame."""
    try:
        if data[0] == _B_DICT:
            value, pos = _read_dict_fast(data, 1, len(data))
        else:
            value, pos = _read_value(data, 0)
    except SerializationError:
        raise
    except Exception as exc:
        raise SerializationError(f"malformed binary payload: {exc}") from exc
    if not isinstance(value, dict) or pos != len(data):
        raise SerializationError("encoded value is not exactly one payload dict")
    return value


# ===========================================================================
# Codec objects: the network/lease layers' uniform view
# ===========================================================================
class WireCodec:
    """A named wire encoding with consistent byte accounting.

    ``encoded_size`` accepts a :class:`Tuple`, a :class:`Pattern`, or an
    already-encoded payload (a JSON-representable dict/list), so the same
    codec prices frames for latency, network byte counters, and lease
    storage accounting — one source of truth per wire.
    """

    name: str = "?"

    def encoded_size(self, value: Any) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<WireCodec {self.name}>"


class JsonWireCodec(WireCodec):
    """The tag-first JSON encoding (the repository's original wire)."""

    name = "json"

    def encoded_size(self, value: Any) -> int:
        if isinstance(value, Tuple):
            payload: Any = encode_tuple(value)
        elif isinstance(value, Pattern):
            payload = encode_pattern(value)
        else:
            payload = value
        try:
            return len(json.dumps(payload, separators=(",", ":")))
        except TypeError as exc:
            raise SerializationError(
                f"payload is not JSON-representable: {exc}") from exc


class BinaryWireCodec(WireCodec):
    """The compact length-prefixed binary encoding."""

    name = "binary"

    def encoded_size(self, value: Any) -> int:
        buf = bytearray()
        _append_value(buf, value)
        return len(buf)


JSON_CODEC = JsonWireCodec()
BINARY_CODEC = BinaryWireCodec()

_CODECS: "dict[str, WireCodec]" = {
    "json": JSON_CODEC,
    "binary": BINARY_CODEC,
}


def get_codec(name: Union[str, WireCodec, None]) -> WireCodec:
    """Resolve a codec by name (``"json"``/``"binary"``); instances pass
    through; ``None`` selects the JSON default."""
    if name is None:
        return JSON_CODEC
    if isinstance(name, WireCodec):
        return name
    codec = _CODECS.get(name)
    if codec is None:
        raise SerializationError(
            f"unknown wire codec {name!r}; available: {sorted(_CODECS)}")
    return codec


def ensure_codec_match(wire_codec: str,
                       transport_codec: Union[str, WireCodec, None],
                       *, transport: str = "network") -> WireCodec:
    """Resolve and validate the codec a runtime transport will speak.

    The one shared construction-time check for ``TiamatConfig.wire_codec``
    across all three runtimes (sim network, threaded registry, aio
    cluster).  ``transport_codec`` is what the transport was explicitly
    built with (``None`` means "inherit from the config"); a disagreement
    between an explicit transport codec and the config is a deployment
    error and raises :class:`~repro.errors.CodecMismatchError` — the same
    error, with the same shape, from every runtime.  Returns the resolved
    :class:`WireCodec` the transport must use.
    """
    if transport_codec is None:
        return get_codec(wire_codec)
    codec = get_codec(transport_codec)
    if codec.name != wire_codec:
        raise CodecMismatchError(
            f"config.wire_codec={wire_codec!r} but the {transport} encodes "
            f"with {codec.name!r}; construct the {transport} with "
            f"codec={wire_codec!r} (or drop its codec argument to inherit "
            f"the config's)")
    return codec
