"""Wire codecs for tuples, patterns, and whole frame payloads.

Tiamat instances exchange tuples and antituples over the (simulated)
network; this module defines the encodings plus :func:`encoded_size`,
which the network layer uses for byte accounting and the lease manager
uses for storage accounting.

Two codecs are provided, selected by name (``get_codec``):

``json`` (the original, and the default)
    A tag-first, JSON-representable encoding — human-readable and
    loosely-coupled, at the price of base64 for bytes fields and JSON
    framing overhead on every frame::

        field:   ["b", true] | ["i", 5] | ["f", 2.5] | ["s", "x"]
                 | ["y", "<base64>"] | ["t", [field, ...]]
        tuple:   ["t", [field, ...]]
        spec:    ["A", field] | ["F", "int"] | ["*"] | ["R", lo, hi]
        pattern: ["p", [spec, ...]]

``binary``
    A compact length-prefixed binary encoding (one tag byte per value,
    LEB128 varints for lengths and integers, raw UTF-8/byte runs, IEEE-754
    doubles).  It covers the full payload model — tuples, patterns, and the
    JSON-shaped frame dicts the protocols exchange — and round-trips
    bit-identically with the JSON codec over every value in the tuple
    model (property-tested in ``tests/test_codec_cross.py``).  See
    ``docs/PROTOCOL.md`` §6 for the byte-level layout.

Both codecs expose the same trio used by the stack: ``encode_tuple`` /
``decode_tuple`` (and pattern equivalents) plus :meth:`WireCodec.encoded_size`
so byte accounting is always consistent with the wire representation the
network was configured with.
"""

from __future__ import annotations

import base64
import json
import struct
from typing import Any, Union

from repro.errors import SerializationError
from repro.tuples.model import ANY, Actual, Field, Formal, Pattern, Range, Tuple

_FORMAL_TYPES = {
    "bool": bool,
    "int": int,
    "float": float,
    "str": str,
    "bytes": bytes,
    "Tuple": Tuple,
}


def _encode_field(value: Any) -> list:
    if isinstance(value, Tuple):
        return ["t", [_encode_field(f) for f in value.fields]]
    if isinstance(value, bool):
        return ["b", value]
    if isinstance(value, int):
        return ["i", value]
    if isinstance(value, float):
        return ["f", value]
    if isinstance(value, str):
        return ["s", value]
    if isinstance(value, bytes):
        return ["y", base64.b64encode(value).decode("ascii")]
    raise SerializationError(f"cannot encode field {value!r}")


def _decode_field(data: Any) -> Any:
    if not isinstance(data, list) or not data:
        raise SerializationError(f"malformed field encoding: {data!r}")
    tag = data[0]
    if tag == "t":
        return Tuple(*[_decode_field(f) for f in data[1]])
    if tag == "b":
        return bool(data[1])
    if tag == "i":
        return int(data[1])
    if tag == "f":
        return float(data[1])
    if tag == "s":
        return str(data[1])
    if tag == "y":
        return base64.b64decode(data[1])
    raise SerializationError(f"unknown field tag {tag!r}")


def encode_tuple(tup: Tuple) -> list:
    """Encode a tuple to its JSON-representable form."""
    return _encode_field(tup)


def decode_tuple(data: Any) -> Tuple:
    """Decode a tuple from its JSON-representable form.

    Any malformation — wrong tags, wrong value types, truncated lists,
    invalid base64 — raises :class:`SerializationError`: frames arrive
    from arbitrary peers and must never crash the dispatcher with an
    untyped exception.
    """
    try:
        value = _decode_field(data)
    except SerializationError:
        raise
    except Exception as exc:
        raise SerializationError(f"malformed tuple encoding: {exc}") from exc
    if not isinstance(value, Tuple):
        raise SerializationError(f"encoded value is not a tuple: {data!r}")
    return value


def _encode_spec(spec: Field) -> list:
    if isinstance(spec, Actual):
        return ["A", _encode_field(spec.value)]
    if isinstance(spec, Formal):
        return ["F", spec.type.__name__]
    if spec == ANY:
        return ["*"]
    if isinstance(spec, Range):
        return ["R", spec.lo, spec.hi]
    raise SerializationError(f"cannot encode pattern spec {spec!r}")


def _decode_spec(data: Any) -> Field:
    if not isinstance(data, list) or not data:
        raise SerializationError(f"malformed spec encoding: {data!r}")
    tag = data[0]
    if tag == "A":
        return Actual(_decode_field(data[1]))
    if tag == "F":
        type_ = _FORMAL_TYPES.get(data[1])
        if type_ is None:
            raise SerializationError(f"unknown formal type {data[1]!r}")
        return Formal(type_)
    if tag == "*":
        return ANY
    if tag == "R":
        return Range(data[1], data[2])
    raise SerializationError(f"unknown spec tag {tag!r}")


def encode_pattern(pattern: Pattern) -> list:
    """Encode a pattern (antituple) to its JSON-representable form."""
    return ["p", [_encode_spec(s) for s in pattern.specs]]


def decode_pattern(data: Any) -> Pattern:
    """Decode a pattern from its JSON-representable form.

    Malformed input raises :class:`SerializationError` (see
    :func:`decode_tuple` for why the conversion is strict).
    """
    if not isinstance(data, list) or len(data) != 2 or data[0] != "p":
        raise SerializationError(f"malformed pattern encoding: {data!r}")
    try:
        return Pattern(*[_decode_spec(s) for s in data[1]])
    except SerializationError:
        raise
    except Exception as exc:
        raise SerializationError(f"malformed pattern encoding: {exc}") from exc


def encoded_size(value: Any) -> int:
    """Wire size in bytes of a tuple, pattern, or already-encoded payload.

    This is the *JSON* codec's accounting (the historical default); the
    network layer asks its configured :class:`WireCodec` instead, so frames
    on a binary-codec network are charged the binary size.
    """
    return JSON_CODEC.encoded_size(value)


# ===========================================================================
# The binary codec: compact length-prefixed encoding
# ===========================================================================
# One tag byte per value; LEB128 varints for all lengths/counts and for
# integers (zigzag-mapped); IEEE-754 big-endian doubles for floats; raw
# UTF-8 / byte runs (no base64).  Tag values are part of the wire format —
# see docs/PROTOCOL.md §6 before renumbering anything.

_B_NONE = 0x00
_B_FALSE = 0x01
_B_TRUE = 0x02
_B_INT = 0x03
_B_FLOAT = 0x04
_B_STR = 0x05
_B_BYTES = 0x06
_B_LIST = 0x07
_B_DICT = 0x08
_B_TUPLE = 0x09
_B_SPEC_ACTUAL = 0x10
_B_SPEC_FORMAL = 0x11
_B_SPEC_ANY = 0x12
_B_SPEC_RANGE = 0x13
_B_PATTERN = 0x14

#: Formal type indexes for the one-byte ``SPEC_FORMAL`` operand.
_FORMAL_INDEX = {"bool": 0, "int": 1, "float": 2, "str": 3, "bytes": 4,
                 "Tuple": 5}
_FORMAL_BY_INDEX = {i: _FORMAL_TYPES[name] for name, i in _FORMAL_INDEX.items()}

_pack_double = struct.Struct(">d").pack
_unpack_double = struct.Struct(">d").unpack_from


def _append_varint(buf: bytearray, value: int) -> None:
    """Append an unsigned LEB128 varint."""
    while value > 0x7F:
        buf.append((value & 0x7F) | 0x80)
        value >>= 7
    buf.append(value)


def _read_varint(data: bytes, pos: int) -> "tuple[int, int]":
    """Read an unsigned LEB128 varint; returns (value, new_pos)."""
    result = 0
    shift = 0
    length = len(data)
    while True:
        if pos >= length:
            raise SerializationError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 448:  # 64 bytes of continuation: not a plausible length
            raise SerializationError("varint too long")


def _append_value(buf: bytearray, value: Any) -> None:
    """Append one payload value (tag byte + operands) to ``buf``."""
    if value is None:
        buf.append(_B_NONE)
    elif value is True:
        buf.append(_B_TRUE)
    elif value is False:
        buf.append(_B_FALSE)
    elif isinstance(value, Tuple):
        _append_tuple(buf, value)
    elif isinstance(value, int):
        buf.append(_B_INT)
        # zigzag-map so small negatives stay small on the wire
        _append_varint(buf, value << 1 if value >= 0 else ~(value << 1))
    elif isinstance(value, float):
        buf.append(_B_FLOAT)
        buf += _pack_double(value)
    elif isinstance(value, str):
        encoded = value.encode("utf-8")
        buf.append(_B_STR)
        _append_varint(buf, len(encoded))
        buf += encoded
    elif isinstance(value, bytes):
        buf.append(_B_BYTES)
        _append_varint(buf, len(value))
        buf += value
    elif isinstance(value, list):
        buf.append(_B_LIST)
        _append_varint(buf, len(value))
        for item in value:
            _append_value(buf, item)
    elif isinstance(value, dict):
        buf.append(_B_DICT)
        _append_varint(buf, len(value))
        for key, item in value.items():
            if not isinstance(key, str):
                raise SerializationError(
                    f"binary payload dict keys must be str, got {key!r}")
            encoded = key.encode("utf-8")
            _append_varint(buf, len(encoded))
            buf += encoded
            _append_value(buf, item)
    elif isinstance(value, Field):
        _append_spec(buf, value)
    elif isinstance(value, Pattern):
        buf.append(_B_PATTERN)
        specs = value.specs
        _append_varint(buf, len(specs))
        for spec in specs:
            _append_spec(buf, spec)
    else:
        raise SerializationError(f"cannot binary-encode {value!r}")


def _append_tuple(buf: bytearray, value: Tuple) -> None:
    """Inlined tuple encoder: the hottest path on a binary wire.

    Exact-type dispatch (``type(f) is str`` ...) avoids the generic
    encoder's isinstance chain and per-field function call; semantics are
    identical because tuple fields are validated at construction.
    """
    buf.append(_B_TUPLE)
    fields = value.fields
    _append_varint(buf, len(fields))
    for field in fields:
        cls = type(field)
        if cls is str:
            encoded = field.encode("utf-8")
            buf.append(_B_STR)
            n = len(encoded)
            if n < 0x80:
                buf.append(n)
            else:
                _append_varint(buf, n)
            buf += encoded
        elif cls is int:
            buf.append(_B_INT)
            raw = field << 1 if field >= 0 else ~(field << 1)
            if raw < 0x80:
                buf.append(raw)
            else:
                _append_varint(buf, raw)
        elif cls is float:
            buf.append(_B_FLOAT)
            buf += _pack_double(field)
        elif cls is bool:
            buf.append(_B_TRUE if field else _B_FALSE)
        elif cls is bytes:
            buf.append(_B_BYTES)
            n = len(field)
            if n < 0x80:
                buf.append(n)
            else:
                _append_varint(buf, n)
            buf += field
        else:  # nested Tuple (possibly a subclass)
            _append_tuple(buf, field)


def _append_spec(buf: bytearray, spec: Field) -> None:
    if isinstance(spec, Actual):
        buf.append(_B_SPEC_ACTUAL)
        _append_value(buf, spec.value)
    elif isinstance(spec, Formal):
        buf.append(_B_SPEC_FORMAL)
        buf.append(_FORMAL_INDEX[spec.type.__name__])
    elif spec == ANY:
        buf.append(_B_SPEC_ANY)
    elif isinstance(spec, Range):
        buf.append(_B_SPEC_RANGE)
        _append_value(buf, spec.lo)
        _append_value(buf, spec.hi)
    else:
        raise SerializationError(f"cannot binary-encode pattern spec {spec!r}")


def _read_value(data: bytes, pos: int) -> "tuple[Any, int]":
    length = len(data)
    if pos >= length:
        raise SerializationError("truncated binary value")
    tag = data[pos]
    pos += 1
    if tag == _B_NONE:
        return None, pos
    if tag == _B_TRUE:
        return True, pos
    if tag == _B_FALSE:
        return False, pos
    if tag == _B_INT:
        raw, pos = _read_varint(data, pos)
        return (raw >> 1) ^ -(raw & 1), pos
    if tag == _B_FLOAT:
        if pos + 8 > length:
            raise SerializationError("truncated float")
        return _unpack_double(data, pos)[0], pos + 8
    if tag == _B_STR:
        n, pos = _read_varint(data, pos)
        if pos + n > length:
            raise SerializationError("truncated string")
        return data[pos:pos + n].decode("utf-8"), pos + n
    if tag == _B_BYTES:
        n, pos = _read_varint(data, pos)
        if pos + n > length:
            raise SerializationError("truncated bytes")
        return bytes(data[pos:pos + n]), pos + n
    if tag == _B_LIST:
        n, pos = _read_varint(data, pos)
        items = []
        for _ in range(n):
            item, pos = _read_value(data, pos)
            items.append(item)
        return items, pos
    if tag == _B_DICT:
        n, pos = _read_varint(data, pos)
        out: dict = {}
        for _ in range(n):
            klen, pos = _read_varint(data, pos)
            if pos + klen > length:
                raise SerializationError("truncated dict key")
            key = data[pos:pos + klen].decode("utf-8")
            pos += klen
            out[key], pos = _read_value(data, pos)
        return out, pos
    if tag == _B_TUPLE:
        return _read_tuple(data, pos)
    if tag == _B_PATTERN:
        n, pos = _read_varint(data, pos)
        specs = []
        for _ in range(n):
            spec, pos = _read_spec(data, pos)
            specs.append(spec)
        return Pattern(*specs), pos
    if tag in (_B_SPEC_ACTUAL, _B_SPEC_FORMAL, _B_SPEC_ANY, _B_SPEC_RANGE):
        return _read_spec(data, pos - 1)
    raise SerializationError(f"unknown binary tag 0x{tag:02x}")


def _read_tuple(data: bytes, pos: int) -> "tuple[Tuple, int]":
    """Decode a tuple body (after its tag byte) via the trusted fast path.

    Only *field-value* tags are admitted inside a tuple, which proves field
    validity by construction and licenses :meth:`Tuple._from_trusted` —
    skipping the per-field re-validation of the public constructor.
    """
    n, pos = _read_varint(data, pos)
    if n == 0:
        raise SerializationError("a tuple must have at least one field")
    length = len(data)
    fields = []
    append = fields.append
    for _ in range(n):
        if pos >= length:
            raise SerializationError("truncated tuple field")
        tag = data[pos]
        pos += 1
        if tag == _B_INT:
            if pos < length and data[pos] < 0x80:   # 1-byte varint fast path
                raw = data[pos]
                pos += 1
            else:
                raw, pos = _read_varint(data, pos)
            append((raw >> 1) ^ -(raw & 1))
        elif tag == _B_STR:
            if pos < length and data[pos] < 0x80:
                size = data[pos]
                pos += 1
            else:
                size, pos = _read_varint(data, pos)
            if pos + size > length:
                raise SerializationError("truncated string")
            append(data[pos:pos + size].decode("utf-8"))
            pos += size
        elif tag == _B_FLOAT:
            if pos + 8 > length:
                raise SerializationError("truncated float")
            append(_unpack_double(data, pos)[0])
            pos += 8
        elif tag == _B_TRUE:
            append(True)
        elif tag == _B_FALSE:
            append(False)
        elif tag == _B_BYTES:
            size, pos = _read_varint(data, pos)
            if pos + size > length:
                raise SerializationError("truncated bytes")
            append(bytes(data[pos:pos + size]))
            pos += size
        elif tag == _B_TUPLE:
            nested, pos = _read_tuple(data, pos)
            append(nested)
        else:
            raise SerializationError(
                f"tag 0x{tag:02x} is not a tuple field value")
    return Tuple._from_trusted(tuple(fields)), pos


def _read_spec(data: bytes, pos: int) -> "tuple[Field, int]":
    if pos >= len(data):
        raise SerializationError("truncated spec")
    tag = data[pos]
    pos += 1
    if tag == _B_SPEC_ACTUAL:
        value, pos = _read_value(data, pos)
        return Actual(value), pos
    if tag == _B_SPEC_FORMAL:
        if pos >= len(data):
            raise SerializationError("truncated formal spec")
        type_ = _FORMAL_BY_INDEX.get(data[pos])
        if type_ is None:
            raise SerializationError(f"unknown formal index {data[pos]}")
        return Formal(type_), pos + 1
    if tag == _B_SPEC_ANY:
        return ANY, pos
    if tag == _B_SPEC_RANGE:
        lo, pos = _read_value(data, pos)
        hi, pos = _read_value(data, pos)
        return Range(lo, hi), pos
    raise SerializationError(f"unknown spec tag 0x{tag:02x}")


def encode_tuple_binary(tup: Tuple) -> bytes:
    """Encode a tuple to the compact binary wire form."""
    if not isinstance(tup, Tuple):
        raise SerializationError(f"not a tuple: {tup!r}")
    buf = bytearray()
    _append_value(buf, tup)
    return bytes(buf)


def decode_tuple_binary(data: Union[bytes, bytearray]) -> Tuple:
    """Decode a tuple from the binary wire form (strict; see module doc)."""
    try:
        value, pos = _read_value(bytes(data), 0)
    except SerializationError:
        raise
    except Exception as exc:
        raise SerializationError(f"malformed binary tuple: {exc}") from exc
    if not isinstance(value, Tuple) or pos != len(data):
        raise SerializationError("encoded value is not exactly one tuple")
    return value


def encode_pattern_binary(pattern: Pattern) -> bytes:
    """Encode a pattern (antituple) to the binary wire form."""
    if not isinstance(pattern, Pattern):
        raise SerializationError(f"not a pattern: {pattern!r}")
    buf = bytearray()
    _append_value(buf, pattern)
    return bytes(buf)


def decode_pattern_binary(data: Union[bytes, bytearray]) -> Pattern:
    """Decode a pattern from the binary wire form (strict)."""
    try:
        value, pos = _read_value(bytes(data), 0)
    except SerializationError:
        raise
    except Exception as exc:
        raise SerializationError(f"malformed binary pattern: {exc}") from exc
    if not isinstance(value, Pattern) or pos != len(data):
        raise SerializationError("encoded value is not exactly one pattern")
    return value


def encode_payload_binary(payload: dict) -> bytes:
    """Encode a whole frame payload dict to the binary wire form."""
    if not isinstance(payload, dict):
        raise SerializationError(f"payload must be a dict, got {payload!r}")
    buf = bytearray()
    _append_value(buf, payload)
    return bytes(buf)


def decode_payload_binary(data: Union[bytes, bytearray]) -> dict:
    """Decode a frame payload dict from the binary wire form (strict)."""
    try:
        value, pos = _read_value(bytes(data), 0)
    except SerializationError:
        raise
    except Exception as exc:
        raise SerializationError(f"malformed binary payload: {exc}") from exc
    if not isinstance(value, dict) or pos != len(data):
        raise SerializationError("encoded value is not exactly one payload dict")
    return value


# ===========================================================================
# Codec objects: the network/lease layers' uniform view
# ===========================================================================
class WireCodec:
    """A named wire encoding with consistent byte accounting.

    ``encoded_size`` accepts a :class:`Tuple`, a :class:`Pattern`, or an
    already-encoded payload (a JSON-representable dict/list), so the same
    codec prices frames for latency, network byte counters, and lease
    storage accounting — one source of truth per wire.
    """

    name: str = "?"

    def encoded_size(self, value: Any) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<WireCodec {self.name}>"


class JsonWireCodec(WireCodec):
    """The tag-first JSON encoding (the repository's original wire)."""

    name = "json"

    def encoded_size(self, value: Any) -> int:
        if isinstance(value, Tuple):
            payload: Any = encode_tuple(value)
        elif isinstance(value, Pattern):
            payload = encode_pattern(value)
        else:
            payload = value
        try:
            return len(json.dumps(payload, separators=(",", ":")))
        except TypeError as exc:
            raise SerializationError(
                f"payload is not JSON-representable: {exc}") from exc


class BinaryWireCodec(WireCodec):
    """The compact length-prefixed binary encoding."""

    name = "binary"

    def encoded_size(self, value: Any) -> int:
        buf = bytearray()
        _append_value(buf, value)
        return len(buf)


JSON_CODEC = JsonWireCodec()
BINARY_CODEC = BinaryWireCodec()

_CODECS: "dict[str, WireCodec]" = {
    "json": JSON_CODEC,
    "binary": BINARY_CODEC,
}


def get_codec(name: Union[str, WireCodec, None]) -> WireCodec:
    """Resolve a codec by name (``"json"``/``"binary"``); instances pass
    through; ``None`` selects the JSON default."""
    if name is None:
        return JSON_CODEC
    if isinstance(name, WireCodec):
        return name
    codec = _CODECS.get(name)
    if codec is None:
        raise SerializationError(
            f"unknown wire codec {name!r}; available: {sorted(_CODECS)}")
    return codec
