"""Wire codec for tuples and patterns.

Tiamat instances exchange tuples and antituples over the (simulated)
network; this module defines a compact, JSON-representable encoding for
both, plus :func:`encoded_size`, which the network layer uses for byte
accounting and the lease manager uses for storage accounting.

Encoding scheme (tag-first lists, so nested tuples are unambiguous)::

    field:   ["b", true] | ["i", 5] | ["f", 2.5] | ["s", "x"]
             | ["y", "<base64>"] | ["t", [field, ...]]
    tuple:   ["t", [field, ...]]
    spec:    ["A", field] | ["F", "int"] | ["*"] | ["R", lo, hi]
    pattern: ["p", [spec, ...]]
"""

from __future__ import annotations

import base64
import json
from typing import Any

from repro.errors import SerializationError
from repro.tuples.model import ANY, Actual, Field, Formal, Pattern, Range, Tuple

_FORMAL_TYPES = {
    "bool": bool,
    "int": int,
    "float": float,
    "str": str,
    "bytes": bytes,
    "Tuple": Tuple,
}


def _encode_field(value: Any) -> list:
    if isinstance(value, Tuple):
        return ["t", [_encode_field(f) for f in value.fields]]
    if isinstance(value, bool):
        return ["b", value]
    if isinstance(value, int):
        return ["i", value]
    if isinstance(value, float):
        return ["f", value]
    if isinstance(value, str):
        return ["s", value]
    if isinstance(value, bytes):
        return ["y", base64.b64encode(value).decode("ascii")]
    raise SerializationError(f"cannot encode field {value!r}")


def _decode_field(data: Any) -> Any:
    if not isinstance(data, list) or not data:
        raise SerializationError(f"malformed field encoding: {data!r}")
    tag = data[0]
    if tag == "t":
        return Tuple(*[_decode_field(f) for f in data[1]])
    if tag == "b":
        return bool(data[1])
    if tag == "i":
        return int(data[1])
    if tag == "f":
        return float(data[1])
    if tag == "s":
        return str(data[1])
    if tag == "y":
        return base64.b64decode(data[1])
    raise SerializationError(f"unknown field tag {tag!r}")


def encode_tuple(tup: Tuple) -> list:
    """Encode a tuple to its JSON-representable form."""
    return _encode_field(tup)


def decode_tuple(data: Any) -> Tuple:
    """Decode a tuple from its JSON-representable form.

    Any malformation — wrong tags, wrong value types, truncated lists,
    invalid base64 — raises :class:`SerializationError`: frames arrive
    from arbitrary peers and must never crash the dispatcher with an
    untyped exception.
    """
    try:
        value = _decode_field(data)
    except SerializationError:
        raise
    except Exception as exc:
        raise SerializationError(f"malformed tuple encoding: {exc}") from exc
    if not isinstance(value, Tuple):
        raise SerializationError(f"encoded value is not a tuple: {data!r}")
    return value


def _encode_spec(spec: Field) -> list:
    if isinstance(spec, Actual):
        return ["A", _encode_field(spec.value)]
    if isinstance(spec, Formal):
        return ["F", spec.type.__name__]
    if spec == ANY:
        return ["*"]
    if isinstance(spec, Range):
        return ["R", spec.lo, spec.hi]
    raise SerializationError(f"cannot encode pattern spec {spec!r}")


def _decode_spec(data: Any) -> Field:
    if not isinstance(data, list) or not data:
        raise SerializationError(f"malformed spec encoding: {data!r}")
    tag = data[0]
    if tag == "A":
        return Actual(_decode_field(data[1]))
    if tag == "F":
        type_ = _FORMAL_TYPES.get(data[1])
        if type_ is None:
            raise SerializationError(f"unknown formal type {data[1]!r}")
        return Formal(type_)
    if tag == "*":
        return ANY
    if tag == "R":
        return Range(data[1], data[2])
    raise SerializationError(f"unknown spec tag {tag!r}")


def encode_pattern(pattern: Pattern) -> list:
    """Encode a pattern (antituple) to its JSON-representable form."""
    return ["p", [_encode_spec(s) for s in pattern.specs]]


def decode_pattern(data: Any) -> Pattern:
    """Decode a pattern from its JSON-representable form.

    Malformed input raises :class:`SerializationError` (see
    :func:`decode_tuple` for why the conversion is strict).
    """
    if not isinstance(data, list) or len(data) != 2 or data[0] != "p":
        raise SerializationError(f"malformed pattern encoding: {data!r}")
    try:
        return Pattern(*[_decode_spec(s) for s in data[1]])
    except SerializationError:
        raise
    except Exception as exc:
        raise SerializationError(f"malformed pattern encoding: {exc}") from exc


def encoded_size(value: Any) -> int:
    """Wire size in bytes of a tuple, pattern, or already-encoded payload."""
    if isinstance(value, Tuple):
        payload = encode_tuple(value)
    elif isinstance(value, Pattern):
        payload = encode_pattern(value)
    else:
        payload = value
    try:
        return len(json.dumps(payload, separators=(",", ":")))
    except TypeError as exc:
        raise SerializationError(f"payload is not JSON-representable: {exc}") from exc
