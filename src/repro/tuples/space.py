"""The per-node local tuple space.

Every Tiamat instance (and every baseline node) carries one of these.  It is
the Linda kernel of the model: the six operations over a single space, with

* **blocking waiters** for ``rd``/``in`` — a waiter is registered against a
  pattern and satisfied as soon as a matching tuple is deposited; waiter
  deadlines are imposed by the layer above (the lease), which simply
  cancels the waiter when the lease expires;
* **lease-driven expiry** — an entry deposited with ``expires_at`` is
  removed when the virtual clock passes that time ("once the lease expires,
  the tuple may be removed from the space at any time", section 2.5);
* **two-phase destructive match** (``hold_match``/``confirm``/``release``)
  used by the distributed `in` protocol;
* **non-deterministic selection** among multiple matches, drawn from a
  seeded stream so experiments stay reproducible;
* **listeners** so instrumentation and the communications manager can react
  to deposits and removals without polling.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.check import probes
from repro.errors import TupleError
from repro.sim.events import Event
from repro.sim.kernel import Simulator
from repro.sim.rng import RngStream
from repro.tuples.matching import matches
from repro.tuples.model import Pattern, Tuple
from repro.tuples.store import StoredEntry, TupleStore


class Waiter:
    """A pending blocking operation (``rd`` or ``in``) on a local space.

    ``event`` succeeds with the matching :class:`Tuple` when one becomes
    available.  Cancel (e.g. on lease expiry) with :meth:`cancel`; a
    cancelled waiter's event never triggers.
    """

    _ids = iter(range(1, 1 << 62))

    def __init__(self, space: "LocalTupleSpace", pattern: Pattern, remove: bool) -> None:
        self.waiter_id = next(Waiter._ids)
        self.space = space
        self.pattern = pattern
        self.remove = remove
        self.event: Event = space.sim.event()
        self.cancelled = False

    @property
    def satisfied(self) -> bool:
        """True once a matching tuple has been delivered."""
        return self.event.triggered

    def cancel(self) -> None:
        """Withdraw the waiter; a no-op if already satisfied."""
        if not self.satisfied:
            self.cancelled = True
            self.space._drop_waiter(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "in" if self.remove else "rd"
        return f"<Waiter #{self.waiter_id} {kind} {self.pattern!r}>"


class LocalTupleSpace:
    """A single node's tuple space (store + waiters + expiry timers)."""

    def __init__(self, sim: Simulator, name: str = "space", rng: Optional[RngStream] = None) -> None:
        self.sim = sim
        self.name = name
        self.rng = rng if rng is not None else sim.rng(f"space/{name}")
        self.store = TupleStore()
        # Planted bug for oracle validation (tests only): with the
        # `double_take` canary on, a deposited tuple keeps being offered to
        # further blocked ``in`` waiters after one has already consumed it —
        # the same tuple satisfies two destructive reads.  Read once at
        # construction (see repro.check.probes).
        self._canary_double_take = probes.canary(probes.CANARY_DOUBLE_TAKE)
        self._waiters: list[Waiter] = []
        self._on_out: list[Callable[[StoredEntry], None]] = []
        self._on_removed: list[Callable[[StoredEntry, str], None]] = []
        # statistics
        self.deposits = 0
        self.expirations = 0
        self.consumed = 0
        self.restores = 0
        sim.obs.observe_space(self, name)

    # ------------------------------------------------------------------
    # Listeners
    # ------------------------------------------------------------------
    def on_out(self, callback: Callable[[StoredEntry], None]) -> None:
        """Register a callback invoked after every successful deposit."""
        self._on_out.append(callback)

    def on_removed(self, callback: Callable[[StoredEntry, str], None]) -> None:
        """Register a callback invoked after any removal.

        ``reason`` is one of ``"consumed"``, ``"expired"``, or
        ``"reconciled"`` (an anti-entropy rejoin purged a restored entry
        that a peer consumed during the downtime).
        """
        self._on_removed.append(callback)

    # ------------------------------------------------------------------
    # The six operations (local semantics)
    # ------------------------------------------------------------------
    def out(self, tup: Tuple, expires_at: Optional[float] = None,
            meta: Optional[dict] = None) -> StoredEntry:
        """Deposit ``tup``; it becomes available to any other operation.

        ``expires_at`` is the absolute virtual time after which the entry
        may be reclaimed (the out-lease's expiry).  The deposit first offers
        the tuple to pending waiters — if an ``in`` waiter consumes it, the
        tuple never rests in the store, matching Linda semantics where a
        blocked ``in`` returns as soon as a match appears.
        """
        meta = dict(meta or {})
        if expires_at is not None:
            meta["expires_at"] = expires_at
        if probes.SINK is not None:
            probes.emit("space.deposit", space=self.name, tup=tup)
        consumed = self._offer_to_waiters(tup)
        if consumed:
            # The tuple was taken by a blocked `in`; record a transient entry
            # for the listeners, but it never becomes resident.
            entry = StoredEntry(0, tup, meta)
            entry.removed = True
            self.consumed += 1
            self.deposits += 1
            for callback in self._on_out:
                callback(entry)
            return entry
        entry = self.store.add(tup, meta)
        self.deposits += 1
        if expires_at is not None:
            self.sim.schedule_at(expires_at, self._expire, entry.entry_id)
        for callback in self._on_out:
            callback(entry)
        return entry

    def restore_entry(self, tup: Tuple, expires_at: Optional[float] = None,
                      meta: Optional[dict] = None,
                      quarantine: bool = False,
                      entry_id: Optional[int] = None) -> StoredEntry:
        """Re-insert a tuple that survived a snapshot or crash recovery.

        A restore is *not* a deposit: it emits a ``space.restore`` probe
        (never ``space.deposit``), so the checker's exactly-once oracle
        still counts the tuple's one original deposit — a resurrected
        ghost consumed a second time is a violation, exactly as it should
        be.  ``on_out`` listeners are not notified either (a recovering
        backend re-anchors itself explicitly via ``rebind``).

        With ``quarantine=True`` the entry is re-inserted *held* —
        invisible to every query — until the anti-entropy rejoin releases
        it (or purges it as a ghost).  Without it, the tuple is offered
        to pending waiters like any arrival.  ``entry_id`` pins the store
        id (durable recovery keeps a tuple's original identity, so peer
        witness records stay valid across incarnations).
        """
        meta = dict(meta or {})
        if expires_at is not None:
            meta["expires_at"] = expires_at
        self.restores += 1
        if probes.SINK is not None:
            probes.emit("space.restore", space=self.name, tup=tup)
        if not quarantine:
            consumed = self._offer_to_waiters(tup)
            if consumed:
                entry = StoredEntry(0, tup, meta)
                entry.removed = True
                self.consumed += 1
                return entry
        entry = self.store.add(tup, meta, entry_id=entry_id)
        if quarantine:
            self.store.hold(entry.entry_id)
        if expires_at is not None:
            self.sim.schedule_at(expires_at, self._expire, entry.entry_id)
        return entry

    def rdp(self, pattern: Pattern) -> Optional[Tuple]:
        """Non-blocking read: a copy of some matching tuple, or None."""
        entry = self.store.find(pattern, self.rng)
        return entry.tuple if entry else None

    def inp(self, pattern: Pattern) -> Optional[Tuple]:
        """Non-blocking take: remove and return some matching tuple, or None."""
        entry = self.store.find(pattern, self.rng)
        if entry is None:
            return None
        self.store.remove(entry.entry_id)
        self.consumed += 1
        if probes.SINK is not None:
            probes.emit("space.consume", space=self.name, tup=entry.tuple)
        self._notify_removed(entry, "consumed")
        return entry.tuple

    def rd(self, pattern: Pattern) -> Waiter:
        """Blocking read: returns a waiter whose event yields the tuple."""
        return self._blocking(pattern, remove=False)

    def in_(self, pattern: Pattern) -> Waiter:
        """Blocking take: returns a waiter whose event yields the tuple."""
        return self._blocking(pattern, remove=True)

    # ------------------------------------------------------------------
    # Two-phase destructive match (for the distributed `in` protocol)
    # ------------------------------------------------------------------
    def hold_match(self, pattern: Pattern) -> Optional[StoredEntry]:
        """Find a match and hold it invisible, pending confirm/release."""
        entry = self.store.find(pattern, self.rng)
        if entry is None:
            return None
        self.store.hold(entry.entry_id)
        return entry

    def confirm(self, entry_id: int) -> StoredEntry:
        """Finalize a held match's removal."""
        entry = self.store.confirm(entry_id)
        self.consumed += 1
        if probes.SINK is not None:
            probes.emit("space.consume", space=self.name, tup=entry.tuple)
        self._notify_removed(entry, "consumed")
        return entry

    def release(self, entry_id: int) -> Optional[StoredEntry]:
        """Put a held match back; if its lease expired meanwhile, reclaim it.

        Returns the entry if it went back into visibility, None if it was
        reclaimed on release.
        """
        entry = self.store.get(entry_id)
        if entry is None:
            raise TupleError(f"no entry #{entry_id} to release")
        expires_at = entry.meta.get("expires_at")
        if expires_at is not None and self.sim.now >= expires_at:
            self.store.remove(entry_id)
            self.expirations += 1
            self._notify_removed(entry, "expired")
            return None
        released = self.store.release(entry_id)
        # A tuple re-entering visibility may satisfy a blocked operation.
        self._offer_entry_to_waiters(released)
        return released if released.visible else None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def count(self, pattern: Optional[Pattern] = None) -> int:
        """Number of visible tuples (matching ``pattern`` when given)."""
        if pattern is None:
            return self.store.visible_count
        return len(self.store.find_all(pattern))

    def snapshot(self) -> list[Tuple]:
        """All visible tuples, oldest first (for assertions and figures)."""
        entries = [e for e in self.store if e.visible]
        entries.sort(key=lambda e: e.entry_id)
        return [e.tuple for e in entries]

    @property
    def waiter_count(self) -> int:
        """Number of registered, unsatisfied waiters."""
        return len(self._waiters)

    def stored_bytes(self) -> int:
        """Approximate bytes resident in the space (for lease accounting)."""
        return self.store.stored_bytes()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _blocking(self, pattern: Pattern, remove: bool) -> Waiter:
        waiter = Waiter(self, pattern, remove)
        existing = self.store.find(pattern, self.rng)
        if existing is not None:
            if remove:
                self.store.remove(existing.entry_id)
                self.consumed += 1
                if probes.SINK is not None:
                    probes.emit("space.consume", space=self.name,
                                tup=existing.tuple)
                self._notify_removed(existing, "consumed")
            waiter.event.succeed(existing.tuple)
            return waiter
        self._waiters.append(waiter)
        return waiter

    def _offer_to_waiters(self, tup: Tuple) -> bool:
        """Offer a fresh tuple to waiters; True if an `in` consumed it."""
        consumed = False
        for waiter in list(self._waiters):
            if not matches(waiter.pattern, tup):
                continue
            self._waiters.remove(waiter)
            waiter.event.succeed(tup)
            if waiter.remove:
                if probes.SINK is not None:
                    probes.emit("space.consume", space=self.name, tup=tup)
                if self._canary_double_take:
                    # Planted bug: keep offering the already-consumed tuple
                    # to further waiters — a second blocked `in` will take
                    # the same tuple (double destructive read).
                    consumed = True
                    continue
                return True
        return consumed

    def _offer_entry_to_waiters(self, entry: StoredEntry) -> None:
        """Offer a re-released resident entry to waiters."""
        for waiter in list(self._waiters):
            if not matches(waiter.pattern, entry.tuple):
                continue
            self._waiters.remove(waiter)
            waiter.event.succeed(entry.tuple)
            if waiter.remove:
                self.store.remove(entry.entry_id)
                self.consumed += 1
                if probes.SINK is not None:
                    probes.emit("space.consume", space=self.name,
                                tup=entry.tuple)
                self._notify_removed(entry, "consumed")
                return

    def _drop_waiter(self, waiter: Waiter) -> None:
        if waiter in self._waiters:
            self._waiters.remove(waiter)

    def _expire(self, entry_id: int) -> None:
        entry = self.store.get(entry_id)
        if entry is None or entry.removed:
            return
        expires_at = entry.meta.get("expires_at")
        if expires_at is None or self.sim.now < expires_at:
            return  # lease was renewed
        if entry.held:
            return  # reclaimed on release (see `release`)
        self.store.remove(entry_id)
        self.expirations += 1
        self._notify_removed(entry, "expired")

    def _notify_removed(self, entry: StoredEntry, reason: str) -> None:
        for callback in self._on_removed:
            callback(entry, reason)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<LocalTupleSpace {self.name!r} tuples={len(self.store)} waiters={len(self._waiters)}>"
