"""The tuple substrate: Linda tuples, antituples, matching, and spaces.

Generative communication (Gelernter's Linda) exchanges *tuples* — ordered
collections of typed data — through a shared space.  Consumers describe what
they want with an *antituple* (here :class:`Pattern`): a template whose
fields are either **actuals** (concrete values that must compare equal) or
**formals** (type placeholders that match any value of that type).

This package provides:

* :class:`Tuple` / :class:`Pattern` — the value model, immutable and
  wire-serializable (:mod:`repro.tuples.serialization`).
* :func:`matches` — the matching relation, with exact-type formal semantics.
* :class:`TupleStore` — an arity/signature-indexed multiset with two-phase
  removal (``hold``/``confirm``/``release``), the primitive Tiamat's
  first-responder-wins `in` protocol is built on.
* :class:`LocalTupleSpace` — the per-node space of the Tiamat model: the six
  Linda operations with blocking waiters, lease-driven expiry, and
  non-deterministic match selection from a seeded stream.
"""

from repro.tuples.model import ANY, Actual, Field, Formal, Pattern, Range, Tuple
from repro.tuples.matching import matches
from repro.tuples.store import StoredEntry, TupleStore
from repro.tuples.space import LocalTupleSpace, Waiter
from repro.tuples.persistence import (
    load_space,
    restore_space,
    save_space,
    snapshot_space,
)
from repro.tuples.serialization import (
    decode_pattern,
    decode_tuple,
    encode_pattern,
    encode_tuple,
    encoded_size,
)

__all__ = [
    "ANY",
    "Actual",
    "Field",
    "Formal",
    "LocalTupleSpace",
    "Pattern",
    "Range",
    "StoredEntry",
    "Tuple",
    "TupleStore",
    "Waiter",
    "decode_pattern",
    "decode_tuple",
    "encode_pattern",
    "encode_tuple",
    "encoded_size",
    "load_space",
    "matches",
    "restore_space",
    "save_space",
    "snapshot_space",
]
