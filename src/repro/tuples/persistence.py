"""Local-space persistence.

Section 2.4's space-info tuple advertises "whether the local space provides
a persistence mechanism or not"; this module provides that mechanism.  A
space snapshot captures every visible tuple together with its remaining
lease time, encoded with the wire codec, so a device can power down and
restore its space later — expiry deadlines are preserved *relative to the
clock* (a tuple with 30 s of lease left at snapshot time has 30 s left at
restore time, wherever the restoring clock stands).

Snapshots are plain JSON-representable dicts; :func:`save_space` /
:func:`load_space` add file I/O on top for the threaded runtime and any
out-of-simulator use.
"""

from __future__ import annotations

import json

from repro.errors import SerializationError
from repro.tuples.serialization import decode_tuple, encode_tuple
from repro.tuples.space import LocalTupleSpace

#: Snapshot format version, bumped on layout changes.
SNAPSHOT_VERSION = 1


def snapshot_space(space: LocalTupleSpace,
                   skip_tags: tuple = ("__space_info__",)) -> dict:
    """Capture a space's visible tuples and remaining lease times.

    Held entries (mid two-phase claim) are deliberately excluded: a claim
    cannot survive a power cycle, and the claim timeout on the live side
    puts the logical state right.  Infrastructure tuples (first field in
    ``skip_tags``, by default the space-info tuple) are excluded too —
    the restoring instance maintains its own.
    """
    now = space.sim.now
    entries = []
    for entry in sorted(space.store, key=lambda e: e.entry_id):
        if not entry.visible:
            continue
        if entry.tuple.fields and entry.tuple[0] in skip_tags:
            continue
        expires_at = entry.meta.get("expires_at")
        remaining = None if expires_at is None else max(0.0, expires_at - now)
        entries.append({
            "tuple": encode_tuple(entry.tuple),
            "remaining": remaining,
        })
    return {
        "version": SNAPSHOT_VERSION,
        "name": space.name,
        "entries": entries,
    }


def restore_space(space: LocalTupleSpace, snapshot: dict) -> int:
    """Deposit a snapshot's tuples into ``space``; returns the count.

    Remaining lease times are re-anchored to the restoring clock.  Raises
    :class:`SerializationError` on malformed snapshots.
    """
    if not isinstance(snapshot, dict) or snapshot.get("version") != SNAPSHOT_VERSION:
        raise SerializationError(f"unsupported snapshot: {snapshot!r}")
    now = space.sim.now
    restored = 0
    try:
        for item in snapshot["entries"]:
            tup = decode_tuple(item["tuple"])
            remaining = item.get("remaining")
            expires_at = None if remaining is None else now + float(remaining)
            space.out(tup, expires_at=expires_at)
            restored += 1
    except SerializationError:
        raise
    except Exception as exc:
        raise SerializationError(f"malformed snapshot: {exc}") from exc
    return restored


def save_space(space: LocalTupleSpace, path: str) -> int:
    """Snapshot ``space`` to a JSON file; returns the entry count."""
    snapshot = snapshot_space(space)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(snapshot, handle, separators=(",", ":"))
    return len(snapshot["entries"])


def load_space(space: LocalTupleSpace, path: str) -> int:
    """Restore a JSON snapshot file into ``space``; returns the count."""
    with open(path, encoding="utf-8") as handle:
        snapshot = json.load(handle)
    return restore_space(space, snapshot)
