"""Local-space persistence.

Section 2.4's space-info tuple advertises "whether the local space provides
a persistence mechanism or not"; this module provides that mechanism.  A
space snapshot captures every visible tuple together with its remaining
lease time, encoded with the wire codec, so a device can power down and
restore its space later — expiry deadlines are preserved *relative to the
clock* (a tuple with 30 s of lease left at snapshot time has 30 s left at
restore time, wherever the restoring clock stands).

Snapshots are plain JSON-representable dicts under either wire codec
(``codec="json"`` stores the JSON list form, ``codec="binary"`` stores the
LEB128 wire bytes hex-encoded); :func:`save_space` / :func:`load_space`
add file I/O on top for the threaded runtime and any out-of-simulator use.
The file write is atomic (temp file in the same directory + ``os.replace``)
and the restore is all-or-nothing: a malformed entry anywhere in the
snapshot deposits nothing.

For durability against real process death — write-ahead logging, crash
recovery, anti-entropy rejoin — see :mod:`repro.tuples.storage`.
"""

from __future__ import annotations

import json
import os
import tempfile

from repro.errors import SerializationError
from repro.tuples.model import Tuple
from repro.tuples.serialization import (
    decode_tuple,
    decode_tuple_binary,
    encode_tuple,
    encode_tuple_binary,
)
from repro.tuples.space import LocalTupleSpace

#: Snapshot format version, bumped on layout changes.
SNAPSHOT_VERSION = 1

#: How much of a bad snapshot's repr makes it into the error message.
_ERR_REPR_LIMIT = 200


def _short(value: object) -> str:
    text = repr(value)
    if len(text) > _ERR_REPR_LIMIT:
        text = text[:_ERR_REPR_LIMIT] + "..."
    return text


def _encode_entry_tuple(tup: Tuple, codec: str) -> object:
    if codec == "binary":
        return encode_tuple_binary(tup).hex()
    return encode_tuple(tup)


def _decode_entry_tuple(data: object, codec: str) -> Tuple:
    if codec == "binary":
        if not isinstance(data, str):
            raise SerializationError(
                f"binary snapshot tuples must be hex strings: {_short(data)}")
        return decode_tuple_binary(bytes.fromhex(data))
    return decode_tuple(data)


def snapshot_space(space: LocalTupleSpace,
                   skip_tags: tuple = ("__space_info__", "_telemetry"),
                   codec: str = "json") -> dict:
    """Capture a space's visible tuples and remaining lease times.

    Held entries (mid two-phase claim) are deliberately excluded: a claim
    cannot survive a power cycle, and the claim timeout on the live side
    puts the logical state right.  Infrastructure tuples (first field in
    ``skip_tags``, by default the space-info tuple and the in-space
    telemetry health rows) are excluded too — the restoring instance
    maintains its own.

    ``codec`` selects the tuple encoding: ``"json"`` (the default, and
    the pre-PR-6 format) or ``"binary"`` (LEB128 wire bytes, hex-encoded
    so the snapshot stays a JSON-representable dict).
    """
    if codec not in ("json", "binary"):
        raise SerializationError(f"unknown snapshot codec {codec!r}")
    now = space.sim.now
    entries = []
    for entry in sorted(space.store, key=lambda e: e.entry_id):
        if not entry.visible:
            continue
        if entry.tuple.fields and entry.tuple[0] in skip_tags:
            continue
        expires_at = entry.meta.get("expires_at")
        remaining = None if expires_at is None else max(0.0, expires_at - now)
        item = {
            "tuple": _encode_entry_tuple(entry.tuple, codec),
            "remaining": remaining,
        }
        durable_id = entry.meta.get("durable_id")
        if durable_id is not None:
            item["durable_id"] = durable_id
        entries.append(item)
    snapshot = {
        "version": SNAPSHOT_VERSION,
        "name": space.name,
        "entries": entries,
    }
    if codec != "json":
        snapshot["codec"] = codec
    return snapshot


def restore_space(space: LocalTupleSpace, snapshot: dict) -> int:
    """Restore a snapshot's tuples into ``space``; returns the count.

    All-or-nothing: the entire snapshot is decoded and validated before
    anything is deposited, so a malformed entry mid-stream can never
    leave the space half-restored.  Remaining lease times are re-anchored
    to the restoring clock.  Restored entries enter through
    :meth:`~repro.tuples.space.LocalTupleSpace.restore_entry` (a restore
    is not a deposit).  Raises :class:`SerializationError` on malformed
    snapshots.
    """
    if not isinstance(snapshot, dict) or snapshot.get("version") != SNAPSHOT_VERSION:
        raise SerializationError(f"unsupported snapshot: {_short(snapshot)}")
    codec = snapshot.get("codec", "json")
    if codec not in ("json", "binary"):
        raise SerializationError(f"unsupported snapshot codec: {_short(codec)}")
    now = space.sim.now
    decoded = []
    try:
        for item in snapshot["entries"]:
            tup = _decode_entry_tuple(item["tuple"], codec)
            remaining = item.get("remaining")
            expires_at = None if remaining is None else now + float(remaining)
            meta = None
            durable_id = item.get("durable_id")
            if durable_id is not None:
                meta = {"durable_id": durable_id}
            decoded.append((tup, expires_at, meta))
    except SerializationError:
        raise
    except Exception as exc:
        raise SerializationError(f"malformed snapshot: {exc}") from exc
    for tup, expires_at, meta in decoded:
        space.restore_entry(tup, expires_at=expires_at, meta=meta)
    return len(decoded)


def save_space(space: LocalTupleSpace, path: str, codec: str = "json") -> int:
    """Snapshot ``space`` to a JSON file; returns the entry count.

    The write is atomic: the snapshot lands in a temp file in the target
    directory and is renamed into place with ``os.replace``, so a crash
    mid-dump leaves either the previous file or the complete new one,
    never a truncated hybrid.
    """
    snapshot = snapshot_space(space, codec=codec)
    data = json.dumps(snapshot, separators=(",", ":"))
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(prefix=".tmp-snapshot-", dir=directory)
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return len(snapshot["entries"])


def load_space(space: LocalTupleSpace, path: str) -> int:
    """Restore a JSON snapshot file into ``space``; returns the count."""
    with open(path, encoding="utf-8") as handle:
        snapshot = json.load(handle)
    return restore_space(space, snapshot)
