"""An indexed tuple multiset with two-phase removal.

The store is the passive data structure under every space implementation in
the repository (Tiamat's local spaces and all five baselines).  It supports:

* duplicate tuples (a multiset — two identical ``out``\\ s mean two tuples);
* candidate lookup indexed by arity and, within an arity, by the value of
  each actual field position of the query pattern (cheap and effective for
  the tag-in-a-fixed-position workloads generative communication produces);
* **two-phase removal**: a destructive match can be *held* (made invisible
  to other queries), then *confirmed* (removed for good) or *released*
  (made visible again).  Tiamat's distributed `in` needs this: a remote
  instance that finds a match holds the tuple while it races other
  responders; the loser releases ("the remaining instances place the tuples
  back into their respective spaces", section 3.1.3).

**Scan caching**: repeated queries with the same pattern against an
unchanged store are the common case in polling workloads (blocking ``rd``
re-checking after every wakeup, serving instances re-matching registered
queries).  ``_scan`` memoizes its result per pattern, keyed to a
**store version** that every visibility-changing mutation (add, remove,
hold, release) bumps — so a hit is provably identical to a fresh scan and
the cache can never serve stale entries.  Hits and misses are counted
(``scan_cache_hits`` / ``scan_cache_misses``) and surface in the metrics
registry via ``Observability.observe_space``.
"""

from __future__ import annotations

import itertools
from typing import Any, Iterator, Optional

from repro.check import probes
from repro.errors import TupleError
from repro.sim.rng import RngStream
from repro.tuples.matching import matches
from repro.tuples.model import Actual, Pattern, Tuple


class StoredEntry:
    """A tuple resident in a store, with bookkeeping metadata.

    ``meta`` is an open dict for the layers above (lease expiry time, the
    identity of the depositing instance, and so on); the store itself never
    interprets it.
    """

    __slots__ = ("entry_id", "tuple", "meta", "held", "removed")

    def __init__(self, entry_id: int, tup: Tuple, meta: Optional[dict] = None) -> None:
        self.entry_id = entry_id
        self.tuple = tup
        self.meta = meta if meta is not None else {}
        self.held = False
        self.removed = False

    @property
    def visible(self) -> bool:
        """Whether queries may currently see this entry."""
        return not self.held and not self.removed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = "held" if self.held else ("removed" if self.removed else "visible")
        return f"<StoredEntry #{self.entry_id} {self.tuple!r} {flags}>"


class TupleStore:
    """Arity-indexed multiset of tuples with hold/confirm/release removal."""

    #: Cached distinct patterns per store before the scan cache is wiped.
    #: Mutation-heavy workloads invalidate constantly (every bump strands
    #: the old version's entries), so the cap bounds stale-entry memory,
    #: not hit rate.
    SCAN_CACHE_MAX = 256

    def __init__(self) -> None:
        self._ids = itertools.count(1)
        # Planted bug for oracle validation (tests only): with the `ghost`
        # canary on, candidate iteration ignores the visibility filter, so
        # scans can match tuples that were already removed or are held —
        # exactly the "ghost read after remove" class the checker's
        # GhostReadOracle exists to catch.  Read once at construction.
        self._canary_ghost = probes.canary(probes.CANARY_GHOST)
        self._entries: dict[int, StoredEntry] = {}
        # arity -> insertion-ordered dict of entry_id -> StoredEntry
        self._by_arity: dict[int, dict[int, StoredEntry]] = {}
        # (arity, position, value-key) -> dict of entry_id -> StoredEntry
        self._by_actual: dict[tuple, dict[int, StoredEntry]] = {}
        # Monotone version, bumped by every visibility-changing mutation;
        # the scan cache keys its entries to it (see module docstring).
        self._version = 0
        self._scan_cache: dict[Pattern, tuple[int, list[StoredEntry]]] = {}
        # statistics: how much work match scans do (index effectiveness)
        self.scans = 0
        self.entries_scanned = 0
        self.scan_cache_hits = 0
        self.scan_cache_misses = 0
        #: Optional ``fn(candidates_examined)`` per scan (installed by
        #: ``Observability.observe_space`` — feeds the scan-length histogram).
        #: Cache hits report 0 examined entries: that is the point.
        self.scan_observer = None

    # ------------------------------------------------------------------
    # Insertion / removal
    # ------------------------------------------------------------------
    def bump_ids(self, floor: int) -> None:
        """Ensure every future entry id is greater than ``floor``.

        Durable recovery calls this before restoring, so entry ids stay
        globally unique across a node's incarnations: peers witness
        consumed ids for the anti-entropy rejoin, and a reused id could
        let a stale witness purge an innocent survivor.
        """
        self._ids = itertools.count(max(next(self._ids), floor + 1))

    def add(self, tup: Tuple, meta: Optional[dict] = None,
            entry_id: Optional[int] = None) -> StoredEntry:
        """Insert a tuple; returns its entry (ids are unique per store).

        ``entry_id`` pins the id instead of drawing from the counter —
        durable recovery restores entries under their *original* ids
        (after :meth:`bump_ids`), so a tuple's identity survives its
        node's death and peers' witness records stay valid.
        """
        self._version += 1
        if entry_id is None:
            entry_id = next(self._ids)
        elif entry_id in self._entries:
            raise TupleError(f"entry id #{entry_id} already in store")
        entry = StoredEntry(entry_id, tup, meta)
        self._entries[entry.entry_id] = entry
        self._by_arity.setdefault(tup.arity, {})[entry.entry_id] = entry
        for pos, value in enumerate(tup.fields):
            key = (tup.arity, pos, self._value_key(value))
            self._by_actual.setdefault(key, {})[entry.entry_id] = entry
        if probes.SINK is not None:
            probes.emit("store.add", store=id(self), entry=entry.entry_id)
        return entry

    def remove(self, entry_id: int) -> StoredEntry:
        """Permanently remove an entry (held or visible)."""
        if self._canary_ghost:
            # Planted bug: the entry is flagged removed but never unindexed,
            # so (combined with the visibility filter the canary disables in
            # :meth:`candidates`) later scans can still match it — a ghost.
            entry = self._entries.get(entry_id)
            if entry is None:
                raise TupleError(f"no entry #{entry_id} in store")
            self._version += 1
            entry.removed = True
            entry.held = False
            if probes.SINK is not None:
                probes.emit("store.remove", store=id(self), entry=entry_id)
            return entry
        entry = self._entries.pop(entry_id, None)
        if entry is None:
            raise TupleError(f"no entry #{entry_id} in store")
        self._version += 1
        entry.removed = True
        entry.held = False
        self._by_arity[entry.tuple.arity].pop(entry_id, None)
        for pos, value in enumerate(entry.tuple.fields):
            key = (entry.tuple.arity, pos, self._value_key(value))
            bucket = self._by_actual.get(key)
            if bucket is not None:
                bucket.pop(entry_id, None)
                if not bucket:
                    del self._by_actual[key]
        if probes.SINK is not None:
            probes.emit("store.remove", store=id(self), entry=entry_id)
        return entry

    # ------------------------------------------------------------------
    # Two-phase removal
    # ------------------------------------------------------------------
    def hold(self, entry_id: int) -> StoredEntry:
        """Make an entry invisible pending confirm/release."""
        entry = self._require(entry_id)
        if entry.held:
            raise TupleError(f"entry #{entry_id} already held")
        self._version += 1
        entry.held = True
        return entry

    def confirm(self, entry_id: int) -> StoredEntry:
        """Finalize removal of a held entry."""
        entry = self._require(entry_id)
        if not entry.held:
            raise TupleError(f"entry #{entry_id} not held; cannot confirm")
        return self.remove(entry_id)

    def release(self, entry_id: int) -> StoredEntry:
        """Put a held entry back into visibility."""
        entry = self._require(entry_id)
        if not entry.held:
            raise TupleError(f"entry #{entry_id} not held; cannot release")
        self._version += 1
        entry.held = False
        return entry

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def candidates(self, pattern: Pattern,
                   snapshot: bool = False) -> Iterator[StoredEntry]:
        """Visible entries that *may* match, via the cheapest index.

        Uses the smallest bucket among the pattern's actual-field indexes,
        falling back to the arity bucket when the pattern is all formals.

        Iteration is **lazy** over the live index bucket — no per-scan
        copy of a potentially huge bucket.  Callers that mutate the store
        while iterating (removing expired entries, holding matches) must
        pass ``snapshot=True``, which materialises the bucket first;
        read-only consumers (``_scan`` and friends) pay nothing.
        """
        buckets = [self._by_arity.get(pattern.arity, {})]
        for pos, spec in enumerate(pattern.specs):
            if isinstance(spec, Actual):
                key = (pattern.arity, pos, self._value_key(spec.value))
                buckets.append(self._by_actual.get(key, {}))
        smallest = min(buckets, key=len)
        source = list(smallest.values()) if snapshot else smallest.values()
        if self._canary_ghost:
            # Planted bug: visibility (removed/held) is not filtered.
            yield from source
            return
        for entry in source:
            if entry.visible:
                yield entry

    def find(self, pattern: Pattern, rng: Optional[RngStream] = None) -> Optional[StoredEntry]:
        """A visible entry matching ``pattern``, or None.

        When several entries match, one is chosen non-deterministically
        (uniformly from ``rng`` when given; otherwise the oldest), per the
        Linda specification of ``rdp``.
        """
        found = self._scan(pattern)
        if not found:
            return None
        if rng is not None and len(found) > 1:
            return rng.choice(found)
        return found[0]

    def find_all(self, pattern: Pattern) -> list[StoredEntry]:
        """All visible entries matching ``pattern`` (oldest first)."""
        found = self._scan(pattern)
        found.sort(key=lambda e: e.entry_id)
        return found

    def _scan(self, pattern: Pattern) -> list[StoredEntry]:
        """Matching visible entries, with scan-cost accounting.

        Results are memoized per (pattern, store version): a repeat query
        against an unchanged store returns the cached match list without
        touching the indexes (counted as a scan that examined 0 entries).
        Both hit and miss return a fresh list — callers may sort or
        truncate their copy without corrupting the cache.
        """
        cached = self._scan_cache.get(pattern)
        if cached is not None and cached[0] == self._version:
            self.scans += 1
            self.scan_cache_hits += 1
            if self.scan_observer is not None:
                self.scan_observer(0)
            if probes.SINK is not None:
                for entry in cached[1]:
                    probes.emit("store.match", store=id(self),
                                entry=entry.entry_id)
            return list(cached[1])
        examined = 0
        found: list[StoredEntry] = []
        for entry in self.candidates(pattern):
            examined += 1
            if matches(pattern, entry.tuple):
                found.append(entry)
        if probes.SINK is not None:
            for entry in found:
                probes.emit("store.match", store=id(self),
                            entry=entry.entry_id)
        self.scans += 1
        self.entries_scanned += examined
        self.scan_cache_misses += 1
        if len(self._scan_cache) >= self.SCAN_CACHE_MAX:
            self._scan_cache.clear()
        self._scan_cache[pattern] = (self._version, found)
        if self.scan_observer is not None:
            self.scan_observer(examined)
        return list(found)

    def get(self, entry_id: int) -> Optional[StoredEntry]:
        """The entry with this id, or None if it was removed."""
        return self._entries.get(entry_id)

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[StoredEntry]:
        return iter(list(self._entries.values()))

    @property
    def visible_count(self) -> int:
        """Number of entries currently visible to queries."""
        return sum(1 for e in self._entries.values() if e.visible)

    def stored_bytes(self) -> int:
        """Approximate wire size of everything stored (for resource accounting)."""
        from repro.tuples.serialization import encoded_size

        return sum(encoded_size(e.tuple) for e in self._entries.values())

    # ------------------------------------------------------------------
    @staticmethod
    def _value_key(value: Any) -> Any:
        """A hashable index key that respects exact-type equality."""
        return (type(value).__name__, value)

    def _require(self, entry_id: int) -> StoredEntry:
        entry = self._entries.get(entry_id)
        if entry is None:
            raise TupleError(f"no entry #{entry_id} in store")
        return entry
