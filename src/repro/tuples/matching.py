"""The tuple/antituple matching relation.

A pattern matches a tuple iff they have the same arity and every field spec
admits the corresponding field value.  The relation is pure and total; all
richer behaviour (non-deterministic selection among multiple matches,
blocking until a match exists) lives in the store and space layers.
"""

from __future__ import annotations

from repro.tuples.model import Pattern, Tuple


def matches(pattern: Pattern, tup: Tuple) -> bool:
    """True iff ``pattern`` admits ``tup`` (same arity, all specs admit)."""
    if pattern.arity != tup.arity:
        return False
    for spec, value in zip(pattern.specs, tup.fields):
        if not spec.admits(value):
            return False
    return True
