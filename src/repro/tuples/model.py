"""Tuples and patterns (antituples): the Linda value model.

Field values are restricted to a wire-safe set — ``bool``, ``int``,
``float``, ``str``, ``bytes`` and nested :class:`Tuple` — so that every
tuple that can be constructed can also be shipped to a remote Tiamat
instance by the codec in :mod:`repro.tuples.serialization`.

Matching semantics (see :mod:`repro.tuples.matching`) are *exact-type*: a
formal ``Formal(int)`` matches a field whose concrete type is ``int``, not a
``bool`` (even though ``bool`` subclasses ``int`` in Python) and not a
``float``.  This mirrors the strict typing of classic Linda tuples and keeps
matching decidable across heterogeneous devices.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional, Union

from repro.errors import MalformedPatternError, MalformedTupleError

#: Concrete Python types a tuple field may hold (plus nested Tuple).
SCALAR_TYPES = (bool, int, float, str, bytes)

FieldValue = Union[bool, int, float, str, bytes, "Tuple"]


def _validate_field(value: Any) -> FieldValue:
    if isinstance(value, Tuple):
        return value
    if isinstance(value, SCALAR_TYPES):
        return value
    raise MalformedTupleError(
        f"field {value!r} has unsupported type {type(value).__name__}; "
        "allowed: bool, int, float, str, bytes, Tuple"
    )


class Tuple:
    """An immutable, ordered collection of typed fields.

    Construct directly from values::

        Tuple("req", 42, "http://example.org/")

    Tuples are hashable and compare by value, so they can be deduplicated,
    used as dict keys, and asserted on in tests.
    """

    #: ``_wire`` caches the tuple's binary wire form (tuples are immutable,
    #: so the encoding can never go stale); re-sending a tuple — relays,
    #: retransmits, fan-out to several peers — degenerates to one memcpy.
    __slots__ = ("_fields", "_hash", "_wire")

    def __init__(self, *fields: FieldValue) -> None:
        if not fields:
            raise MalformedTupleError("a tuple must have at least one field")
        self._fields = tuple(_validate_field(f) for f in fields)
        self._hash: Optional[int] = None
        self._wire: Optional[bytes] = None

    @classmethod
    def of(cls, fields: Iterable[FieldValue]) -> "Tuple":
        """Build a tuple from an iterable of field values."""
        return cls(*fields)

    @classmethod
    def _from_trusted(cls, fields: "tuple") -> "Tuple":
        """Construct without per-field validation.

        Internal fast path for decoders that *prove* field validity by
        construction (the binary wire decoder admits only field-value tags
        inside a tuple), so re-validating every field would only re-spend
        the time the compact codec exists to save.  ``fields`` must be a
        non-empty plain tuple of valid field values.
        """
        self = object.__new__(cls)
        self._fields = fields
        self._hash = None
        self._wire = None
        return self

    @property
    def fields(self) -> tuple:
        """The field values, in order."""
        return self._fields

    @property
    def arity(self) -> int:
        """Number of fields."""
        return len(self._fields)

    @property
    def signature(self) -> tuple:
        """Per-field concrete type names; the index key for stores."""
        return tuple(type(f).__name__ for f in self._fields)

    def __getitem__(self, index: int) -> FieldValue:
        return self._fields[index]

    def __len__(self) -> int:
        return len(self._fields)

    def __iter__(self):
        return iter(self._fields)

    def __eq__(self, other: object) -> bool:
        # Equality is type-strict, consistent with matching: Tuple(1) is not
        # Tuple(True) and Tuple(1) is not Tuple(1.0).
        if not isinstance(other, Tuple) or len(other._fields) != len(self._fields):
            return False
        return all(
            type(a) is type(b) and a == b
            for a, b in zip(self._fields, other._fields)
        )

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(
                ("repro.Tuple",)
                + tuple((type(f).__name__, f) for f in self._fields)
            )
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(repr(f) for f in self._fields)
        return f"Tuple({inner})"


class Field:
    """Base class for pattern field specifications."""

    __slots__ = ()

    def admits(self, value: FieldValue) -> bool:  # pragma: no cover - abstract
        """Whether this spec matches the given concrete field value."""
        raise NotImplementedError


class Actual(Field):
    """A concrete value that the corresponding tuple field must equal.

    Equality is type-strict: ``Actual(1)`` does not admit ``True`` and
    ``Actual(1.0)`` does not admit ``1``.
    """

    __slots__ = ("value",)

    def __init__(self, value: FieldValue) -> None:
        self.value = _validate_field(value)

    def admits(self, value: FieldValue) -> bool:
        return type(value) is type(self.value) and value == self.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Actual) and type(other.value) is type(self.value) and other.value == self.value

    def __hash__(self) -> int:
        return hash(("Actual", type(self.value).__name__, self.value))

    def __repr__(self) -> str:
        return f"Actual({self.value!r})"


class Formal(Field):
    """A typed placeholder: admits any value whose concrete type matches.

    ``Formal(Tuple)`` admits any nested tuple.  Type matching is exact
    (``Formal(int)`` does not admit ``True``).
    """

    __slots__ = ("type",)

    _ALLOWED = SCALAR_TYPES + (Tuple,)

    def __init__(self, type_: type) -> None:
        if type_ not in self._ALLOWED:
            names = ", ".join(t.__name__ for t in self._ALLOWED)
            raise MalformedPatternError(
                f"Formal type must be one of {names}; got {type_!r}"
            )
        self.type = type_

    def admits(self, value: FieldValue) -> bool:
        return type(value) is self.type or (self.type is Tuple and isinstance(value, Tuple))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Formal) and other.type is self.type

    def __hash__(self) -> int:
        return hash(("Formal", self.type.__name__))

    def __repr__(self) -> str:
        return f"Formal({self.type.__name__})"


class _AnyField(Field):
    """Wildcard: admits any field value regardless of type.

    An extension over classic Linda formals, convenient for monitoring and
    debugging tools that want to observe whole classes of tuples.  Exposed
    as the singleton :data:`ANY`.
    """

    __slots__ = ()

    def admits(self, value: FieldValue) -> bool:
        return True

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _AnyField)

    def __hash__(self) -> int:
        return hash("AnyField")

    def __repr__(self) -> str:
        return "ANY"


#: The wildcard field spec: matches any value of any allowed type.
ANY = _AnyField()


class Range(Field):
    """A numeric range constraint: admits ints/floats in [lo, hi].

    A wire-serializable predicate formal (arbitrary Python predicates cannot
    be propagated to remote instances; ranges can).  Either bound may be
    ``None`` for open-ended ranges.
    """

    __slots__ = ("lo", "hi")

    def __init__(self, lo: Optional[float] = None, hi: Optional[float] = None) -> None:
        for bound in (lo, hi):
            if bound is not None and (isinstance(bound, bool)
                                      or not isinstance(bound, (int, float))):
                raise MalformedPatternError(f"Range bound {bound!r} is not numeric")
        if lo is None and hi is None:
            raise MalformedPatternError("Range needs at least one bound")
        if lo is not None and hi is not None and lo > hi:
            raise MalformedPatternError(f"Range lo {lo} > hi {hi}")
        self.lo = lo
        self.hi = hi

    def admits(self, value: FieldValue) -> bool:
        if type(value) is bool or not isinstance(value, (int, float)):
            return False
        if self.lo is not None and value < self.lo:
            return False
        if self.hi is not None and value > self.hi:
            return False
        return True

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Range) and (other.lo, other.hi) == (self.lo, self.hi)

    def __hash__(self) -> int:
        return hash(("Range", self.lo, self.hi))

    def __repr__(self) -> str:
        return f"Range({self.lo!r}, {self.hi!r})"


def _coerce_spec(spec: Any) -> Field:
    """Turn pattern-construction sugar into a Field spec.

    Raw values become actuals; types become formals; Field instances pass
    through unchanged.  Callables are rejected with a pointer to
    :class:`Range` (predicates do not serialize).
    """
    if isinstance(spec, Field):
        return spec
    if isinstance(spec, type):
        return Formal(spec)
    if callable(spec) and not isinstance(spec, (Tuple,) + SCALAR_TYPES):
        raise MalformedPatternError(
            f"bare callables are not valid field specs ({spec!r}); "
            "use Range or a concrete Field subclass"
        )
    return Actual(spec)


class Pattern:
    """An antituple: the template used to search a space.

    Construction accepts sugar for the common cases — values are actuals,
    types are formals, :data:`ANY` is the wildcard::

        Pattern("response", 42, str)      # actual, actual, formal
        Pattern("load", Range(0.0, 0.5))  # serializable predicate
    """

    __slots__ = ("_specs", "_hash")

    def __init__(self, *specs: Any) -> None:
        if not specs:
            raise MalformedPatternError("a pattern must have at least one field")
        self._specs = tuple(_coerce_spec(s) for s in specs)
        self._hash: Optional[int] = None

    @classmethod
    def of(cls, specs: Iterable[Any]) -> "Pattern":
        """Build a pattern from an iterable of field specs."""
        return cls(*specs)

    @classmethod
    def for_tuple(cls, tup: Tuple) -> "Pattern":
        """The fully-actual pattern that matches exactly ``tup``."""
        return cls(*[Actual(f) for f in tup.fields])

    @property
    def specs(self) -> tuple:
        """The field specs, in order."""
        return self._specs

    @property
    def arity(self) -> int:
        """Number of fields the pattern constrains."""
        return len(self._specs)

    def first_actual(self) -> Optional[tuple]:
        """``(index, value)`` of the first actual field, or None.

        Stores use the first actual as a secondary index key, because
        real workloads overwhelmingly tag tuples with a string in a fixed
        position ("request", "result", ...).
        """
        for i, spec in enumerate(self._specs):
            if isinstance(spec, Actual):
                return (i, spec.value)
        return None

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Pattern) and other._specs == self._specs

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(("repro.Pattern", self._specs))
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(repr(s) for s in self._specs)
        return f"Pattern({inner})"
