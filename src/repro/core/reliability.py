"""Reliable-delivery sublayer for the critical protocol frames.

The Tiamat protocol is deliberately best-effort — most frames can be lost
with no harm beyond wasted effort (a lost QUERY is re-covered by discovery,
a lost DISCOVER_ACK by the next multicast).  A handful of frames are
different: losing a ``CLAIM_ACCEPT`` silently downgrades a destructive
``in`` from exactly-once to at-most-twice (the origin believes it consumed
the tuple while the serving side puts it back on claim timeout), and a
duplicated or reordered offer can make the origin answer the same offer
twice with contradictory verdicts.

This module adds an ack/retransmit/dedup sublayer for exactly those frames:

* **per-peer sequence numbers** — every reliable frame carries
  ``rseq`` (monotone per sender→peer) and ``repoch`` (a fresh value per
  instance incarnation, so a crash+restart never collides with its
  predecessor's numbering);
* **retransmission with exponential backoff and jitter** — a pending frame
  is resent until a ``REL_ACK`` arrives or its *deadline* passes.  The
  deadline is derived from the operation's lease: **leases remain the only
  effort budget** (section 2.5) and no retransmission is ever scheduled
  past lease expiry;
* **a receive-side dedup window** — per (peer, epoch), the receiver tracks
  recently seen sequence numbers; duplicates (network duplication *or*
  retransmissions whose ack was lost) are re-acked but not redispatched,
  which makes every destructive-path handler idempotent.

The sublayer is transparent to handlers: payloads gain ``rseq``/``repoch``
fields on the wire, which handlers ignore.  ``REL_ACK`` frames themselves
are never reliable — a lost ack just causes one more retransmission, which
the dedup window absorbs.

**Piggybacked acks** (``config.ack_piggyback``, off by default): instead of
answering every reliable frame with a dedicated ``REL_ACK``, the channel
queues ``[seq, epoch]`` pairs per peer.  The instance's :meth:`send` drains
the queue onto the next outgoing data frame as a ``"racks"`` list; any acks
still queued at the end of the simulation tick are flushed as a single
consolidated ``REL_ACK`` carrying the whole list.  Either way the acks
reach the peer within the same tick they would have as dedicated frames,
so retransmission behaviour is unchanged — only the frame count drops.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Optional

from repro.check import probes
from repro.core import protocol

_epochs = itertools.count(1)


class PendingFrame:
    """One reliable frame awaiting acknowledgement."""

    __slots__ = ("peer", "seq", "payload", "deadline", "interval", "timer",
                 "attempts")

    def __init__(self, peer: str, seq: int, payload: dict,
                 deadline: Optional[float], interval: float) -> None:
        self.peer = peer
        self.seq = seq
        self.payload = payload
        self.deadline = deadline
        self.interval = interval
        self.timer = None
        self.attempts = 0


class _PeerWindow:
    """Receive-side dedup state for one (peer, epoch)."""

    __slots__ = ("seen", "order", "capacity")

    def __init__(self, capacity: int) -> None:
        self.seen: set[int] = set()
        self.order: deque = deque()
        self.capacity = capacity

    def check_and_add(self, seq: int) -> bool:
        """True iff ``seq`` is fresh (and now recorded)."""
        if seq in self.seen:
            return False
        self.seen.add(seq)
        self.order.append(seq)
        while len(self.order) > self.capacity:
            self.seen.discard(self.order.popleft())
        return True


class ReliableChannel:
    """Per-instance ack/retransmit/dedup machinery.

    One channel serves all of an instance's peers.  Sending is explicit
    (:meth:`send` stamps and tracks the frame); receiving is woven into the
    instance's dispatcher: ``REL_ACK`` frames are fed to :meth:`on_ack`,
    and any arriving frame carrying ``rseq`` goes through
    :meth:`on_receive`, which acks it and reports whether it is fresh.
    """

    def __init__(self, instance) -> None:
        self.instance = instance
        self.config = instance.config
        self.epoch = next(_epochs)
        self._rng = instance.sim.rng(f"reliability/{instance.name}")
        self._next_seq: dict[str, "itertools.count"] = {}
        self._pending: dict[tuple, PendingFrame] = {}
        self._windows: dict[str, dict[int, _PeerWindow]] = {}
        #: Per-peer ``[seq, epoch]`` pairs awaiting a ride on a data frame
        #: (only populated when ``config.ack_piggyback`` is on).
        self._pending_acks: dict[str, list] = {}
        # statistics
        self.sent = 0
        self.retransmits = 0
        self.acked = 0
        self.expired = 0
        self.duplicates_dropped = 0
        self.acks_sent = 0
        self.acks_piggybacked = 0
        #: Optional ``fn(delay_seconds)`` fed each chosen backoff delay
        #: (installed by ``Observability.observe_reliability``).
        self.backoff_observer = None

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, peer: str, payload: dict,
             deadline: Optional[float] = None) -> bool:
        """Send ``payload`` reliably; retransmit until acked or ``deadline``.

        ``deadline`` is an *absolute* virtual time, normally the expiry of
        the lease funding the operation.  ``None`` falls back to a window
        of ``config.claim_timeout + config.peer_timeout`` from now — wide
        enough to resolve any claim, still strictly bounded so a dead peer
        can never pin retransmission state forever.

        Returns the underlying ``unicast`` result for the *first*
        transmission attempt (False = peer not visible right now; the
        frame is still queued and will be retried until the deadline —
        the peer may reappear).
        """
        sim = self.instance.sim
        counter = self._next_seq.get(peer)
        if counter is None:
            counter = self._next_seq[peer] = itertools.count(1)
        seq = next(counter)
        payload = dict(payload)
        payload["rseq"] = seq
        payload["repoch"] = self.epoch
        if deadline is None:
            deadline = sim.now + self.config.claim_timeout + self.config.peer_timeout
        pending = PendingFrame(peer, seq, payload, deadline,
                               self.config.retry_initial)
        self._pending[(peer, seq)] = pending
        self.sent += 1
        return self._transmit(pending)

    def _transmit(self, pending: PendingFrame) -> bool:
        sim = self.instance.sim
        pending.attempts += 1
        ok = self.instance.send(pending.peer, pending.payload)
        # Schedule the next attempt (with jitter), but never past deadline.
        delay = pending.interval * (1.0 + self.config.retry_jitter
                                    * self._rng.random())
        if self.backoff_observer is not None:
            self.backoff_observer(delay)
        pending.interval = min(pending.interval * self.config.retry_backoff,
                               self.config.retry_max_interval)
        if pending.deadline is not None and sim.now + delay >= pending.deadline:
            # The next attempt would land after the lease is over: this was
            # the final transmission.  Drop the state at the deadline.
            remaining = max(0.0, pending.deadline - sim.now)
            pending.timer = sim.schedule(remaining, self._give_up, pending)
        else:
            pending.timer = sim.schedule(delay, self._retry, pending)
        return ok

    def _retry(self, pending: PendingFrame) -> None:
        if (pending.peer, pending.seq) not in self._pending:
            return  # acked in the meantime
        self.retransmits += 1
        self.instance.flight_ring.append(
            self.instance.sim.now, "retransmit",
            pending.payload.get("op_id"), pending.payload.get("kind"),
            pending.peer, pending.seq)
        self._transmit(pending)

    def _give_up(self, pending: PendingFrame) -> None:
        if self._pending.pop((pending.peer, pending.seq), None) is not None:
            self.expired += 1
            self.instance.flight_ring.append(
                self.instance.sim.now, "rexpire",
                pending.payload.get("op_id"), pending.payload.get("kind"),
                pending.peer, pending.seq)

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------
    def on_ack(self, peer: str, payload: dict) -> None:
        """A ``REL_ACK`` arrived: stop retransmitting the named frame(s).

        Handles both wire forms: the classic single-frame ack
        (``rseq``/``repoch``) and the consolidated list form (``racks``,
        a list of ``[seq, epoch]`` pairs) produced by the piggyback flush.
        """
        racks = payload.get("racks")
        if racks is not None:
            self.on_piggyback(peer, racks)
            return
        if payload.get("repoch") != self.epoch:
            return  # ack addressed to a previous incarnation
        self._ack_one(peer, payload.get("rseq"))

    def on_piggyback(self, peer: str, racks) -> None:
        """Process a ``racks`` list of ``[seq, epoch]`` ack pairs.

        Called both for dedicated consolidated ``REL_ACK`` frames and for
        data frames carrying piggybacked acks.  Entries addressed to a
        previous incarnation (epoch mismatch) are ignored, exactly like
        classic acks.
        """
        if not isinstance(racks, (list, tuple)):
            return
        for entry in racks:
            if not isinstance(entry, (list, tuple)) or len(entry) != 2:
                continue
            seq, epoch = entry
            if epoch != self.epoch:
                continue
            self._ack_one(peer, seq)

    def _ack_one(self, peer: str, seq) -> None:
        pending = self._pending.pop((peer, seq), None)
        if pending is not None:
            self.acked += 1
            if pending.timer is not None:
                pending.timer.cancel()
                pending.timer = None

    def on_receive(self, peer: str, payload: dict) -> bool:
        """A reliable data frame arrived: ack it; True iff it is fresh.

        Duplicates (same (epoch, seq) within the window) are re-acked —
        the earlier ack evidently did not make it — but must not be
        dispatched to protocol handlers.
        """
        seq = payload.get("rseq")
        epoch = payload.get("repoch")
        if self.config.ack_piggyback:
            self._queue_ack(peer, seq, epoch)
        else:
            self.acks_sent += 1
            self.instance.send(peer, {"kind": protocol.REL_ACK,
                                      "rseq": seq, "repoch": epoch})
        epochs = self._windows.setdefault(peer, {})
        window = epochs.get(epoch)
        if window is None:
            # Keep at most two epochs per peer: the live one and its
            # predecessor (late frames from before a restart).
            if len(epochs) >= 2:
                oldest = min(epochs)
                if epoch < oldest:
                    return True  # ancient epoch, no state kept; let it pass
                del epochs[oldest]
            window = epochs[epoch] = _PeerWindow(self.config.dedup_window)
        if window.check_and_add(seq):
            if probes.SINK is not None:
                # ``rinc`` is this receiver's own incarnation (its channel
                # epoch): dedup windows are volatile, so the no-dup
                # guarantee is scoped per receiver incarnation — a frame
                # redelivered to a crashed-and-recovered node is ordinary
                # at-least-once behaviour, not a dedup failure.
                probes.emit("rel.dispatch", src=peer,
                            dst=self.instance.name, epoch=epoch, seq=seq,
                            rinc=self.epoch)
            return True
        self.duplicates_dropped += 1
        return False

    # ------------------------------------------------------------------
    # Ack piggybacking
    # ------------------------------------------------------------------
    def _queue_ack(self, peer: str, seq, epoch) -> None:
        """Queue an ack to ride the next data frame to ``peer``.

        The first ack queued in a tick schedules an end-of-tick flush
        (delay 0 runs after every event already queued at the current
        time), so acks never wait longer than they would as dedicated
        frames.
        """
        queue = self._pending_acks.get(peer)
        if queue is None:
            queue = self._pending_acks[peer] = []
            self.instance.sim.schedule(0.0, self._flush_acks, peer)
        queue.append([seq, epoch])

    def take_piggyback(self, peer: str) -> Optional[list]:
        """Drain queued acks for ``peer`` onto an outgoing data frame.

        Called by the instance's ``send`` just before transmission.
        Returns the ``[seq, epoch]`` list to attach as ``"racks"``, or
        ``None`` when nothing is queued.
        """
        queue = self._pending_acks.pop(peer, None)
        if queue:
            self.acks_piggybacked += len(queue)
        return queue or None

    def _flush_acks(self, peer: str) -> None:
        """End-of-tick fallback: no data frame took the queued acks."""
        queue = self._pending_acks.pop(peer, None)
        if not queue:
            return  # drained by a piggyback ride in the meantime
        self.acks_sent += len(queue)
        self.instance.send(peer, {"kind": protocol.REL_ACK, "racks": queue})

    # ------------------------------------------------------------------
    @property
    def pending_count(self) -> int:
        """Reliable frames still awaiting acknowledgement."""
        return len(self._pending)

    def shutdown(self) -> None:
        """Cancel every retransmission timer (instance going down)."""
        for pending in self._pending.values():
            if pending.timer is not None:
                pending.timer.cancel()
                pending.timer = None
        self._pending.clear()
        self._pending_acks.clear()

    def stats(self) -> dict:
        """Plain-dict counters for reports and the CLI."""
        return {
            "sent": self.sent,
            "retransmits": self.retransmits,
            "acked": self.acked,
            "expired": self.expired,
            "duplicates_dropped": self.duplicates_dropped,
            "acks_sent": self.acks_sent,
            "acks_piggybacked": self.acks_piggybacked,
            "pending": self.pending_count,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<ReliableChannel {self.instance.name} epoch={self.epoch} "
                f"pending={self.pending_count}>")
