"""Serving side: how an instance works on *other* instances' operations.

When a QUERY arrives, the receiving instance first consults the admission
plane (when enabled): the :class:`~repro.core.admission.AdmissionController`
prices the work from live load signals *before* any lease or thread is
allocated, and sheds with a structured refusal carrying ``reason`` and a
``retry_after`` hint.  Admitted work then negotiates an internal lease for
the effort — "any Tiamat instance which, during the course of performing an
operation, places demands on another, is responsible for negotiating any
further leases" (section 2.5), and the lease manager is the first point of
contact for *any* operation (Figure 2).  A refusal is reported back as
QUERY_REFUSED and no work happens.

With ``config.serve_cost > 0`` the server models dispatch effort
explicitly: admitted QUERYs enter a bounded inbound queue drained by
``config.serve_workers`` dispatch workers, each query costing
``serve_cost`` virtual seconds of worker time before its probe/watch logic
runs.  The default (``serve_cost == 0``) keeps the original inline path —
arrival and dispatch are the same instant — so seeded experiments are
unperturbed unless a config opts in.

Probe queries are answered from the local space at dispatch.  Blocking
queries register a local watch that lives until a match, a CANCEL, or the
serving lease's expiry.  Destructive matches are **held** (two-phase) and
*offered* to the origin; the hold is resolved by CLAIM_ACCEPT (consume),
CLAIM_REJECT (put back), or a claim timeout (put back — the origin
evidently went away).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Optional

from repro.check import probes
from repro.core import protocol
from repro.core.admission import (
    REFUSE_SERVING_LEASE,
    REFUSE_THREADS,
    AdmissionController,
)
from repro.errors import LeaseError
from repro.leasing import Lease, LeaseTerms, OperationKind, SimpleLeaseRequester
from repro.tuples import Pattern, Tuple, decode_pattern, encode_tuple


class Serving:
    """State for one remote operation this instance is working on."""

    __slots__ = ("op_id", "origin", "kind", "pattern", "lease", "waiter",
                 "held_entry_id", "offered", "claim_timer", "closed",
                 "thread_token")

    def __init__(self, op_id: str, origin: str, kind: OperationKind,
                 pattern: Pattern, lease: Lease,
                 thread_token: Optional[Any] = None) -> None:
        self.op_id = op_id
        self.origin = origin
        self.kind = kind
        self.pattern = pattern
        self.lease = lease
        self.waiter: Optional[Any] = None
        self.held_entry_id: Optional[int] = None
        self.offered = False
        self.claim_timer: Optional[Any] = None
        self.closed = False
        self.thread_token: Optional[Any] = thread_token


class QueryServer:
    """The instance-side machinery for answering remote queries."""

    def __init__(self, instance: Any) -> None:
        self.instance = instance
        self._servings: dict[str, Serving] = {}
        config = instance.config
        # The admission plane: consulted at QUERY arrival, before any
        # lease negotiation or thread allocation (default off).
        self.admission: Optional[AdmissionController] = None
        if config.admission_enabled:
            self.admission = AdmissionController(
                clock=lambda: self.instance.sim.now,
                queue_bound=config.admission_queue_bound,
                price_curve=config.admission_price_curve,
                fairness=config.admission_fairness,
                capacity_rate=float(config.serve_workers),
                unit_cost=config.serve_cost,
                burst=config.admission_burst,
                retry_floor=config.admission_retry_floor,
            )
        # Bounded inbound serving queue (active only with serve_cost > 0):
        # (origin, payload, arrived_at) triples drained by dispatch workers.
        self._queue: deque[tuple[str, dict, float]] = deque()
        self._queued_ids: set[str] = set()
        self._busy_workers = 0
        if config.serve_cost > 0:
            # Serving-queue pressure feeds the lease manager's usage
            # snapshot, so granting policies see inbound congestion the
            # same way they see storage and thread pressure.
            instance.leases.attach_pressure_signal(self.queue_pressure)
        # statistics
        self.served = 0
        self.refused = 0
        self.sheds = 0
        self.stale_dropped = 0
        self.offers_made = 0
        self.offers_won = 0
        self.offers_put_back = 0
        self.duplicate_queries = 0
        #: Observer hook (set by repro.obs) for realized queue waits.
        self.queue_wait_observer: Optional[Callable[[float], None]] = None

    # ------------------------------------------------------------------
    # Query arrival
    # ------------------------------------------------------------------
    def handle_query(self, origin: str, payload: dict) -> None:
        """Entry point for a QUERY frame: admission, then queue or dispatch."""
        op_id = payload["op_id"]
        if op_id in self._servings or op_id in self._queued_ids:
            # A duplicated (or retransmitted) QUERY for work already in
            # progress: a second serving under the same id would overwrite
            # the first in the table, stranding its held entry, claim
            # timer, lease, and worker thread.  Destructive-path handlers
            # must be idempotent, so drop it.
            self.duplicate_queries += 1
            return
        config = self.instance.config
        if self.admission is not None:
            drain = (config.serve_workers / config.serve_cost
                     if config.serve_cost > 0 else 0.0)
            decision = self.admission.consider(
                origin, payload.get("op", ""),
                queue_depth=len(self._queue),
                drain_rate=drain,
                utilisation=self.instance.leases.threads.utilisation,
                active_servings=len(self._servings),
                deadline=payload.get("deadline"))
            if not decision.admitted:
                self.sheds += 1
                tracer = self.instance.sim.obs.tracer
                if tracer is not None:
                    tracer.lease_event(op_id, self.instance.name, "shed",
                                       reason=decision.reason)
                self.instance.flight_ring.append(
                    self.instance.sim.now, "shed", op_id,
                    payload.get("op"), origin, decision.reason)
                self._refuse(origin, op_id, decision.reason,
                             decision.retry_after)
                return
        if config.serve_cost <= 0:
            self._dispatch_query(origin, payload)
            return
        self._queue.append((origin, payload, self.instance.sim.now))
        self._queued_ids.add(op_id)
        self._pump()

    # ------------------------------------------------------------------
    # The bounded inbound serving queue and its dispatch workers
    # ------------------------------------------------------------------
    def _pump(self) -> None:
        """Hand queued queries to free dispatch workers."""
        config = self.instance.config
        while self._busy_workers < config.serve_workers and self._queue:
            origin, payload, arrived_at = self._queue.popleft()
            op_id = payload["op_id"]
            if op_id not in self._queued_ids:
                continue  # cancelled while queued
            self._queued_ids.discard(op_id)
            if self.queue_wait_observer is not None:
                self.queue_wait_observer(self.instance.sim.now - arrived_at)
            # With admission on, work whose origin lease has already run
            # out is dropped at the queue head for free: replying to a
            # dead origin is the waste admission control exists to avoid.
            # The uncontrolled baseline faithfully burns a worker on it.
            deadline = payload.get("deadline")
            if (self.admission is not None and deadline is not None
                    and self.instance.sim.now >= arrived_at + deadline):
                self.stale_dropped += 1
                tracer = self.instance.sim.obs.tracer
                if tracer is not None:
                    tracer.note(op_id, self.instance.name, "stale_dropped")
                continue
            self._busy_workers += 1
            self.instance.sim.schedule(config.serve_cost,
                                       self._worker_finish, origin, payload)

    def _worker_finish(self, origin: str, payload: dict) -> None:
        """A dispatch worker spent ``serve_cost`` on the query; run it."""
        self._busy_workers -= 1
        try:
            self._dispatch_query(origin, payload)
        finally:
            self._pump()

    @property
    def queue_depth(self) -> int:
        """Inbound QUERYs waiting for a dispatch worker."""
        return len(self._queue)

    def queue_pressure(self) -> float:
        """Inbound queue fullness (0..1) for the lease manager's snapshot."""
        bound = self.instance.config.admission_queue_bound
        return min(1.0, len(self._queue) / bound) if bound else 0.0

    # ------------------------------------------------------------------
    # Dispatch: lease, thread, then probe or watch
    # ------------------------------------------------------------------
    def _dispatch_query(self, origin: str, payload: dict) -> None:
        """The classic serving path: lease -> thread -> probe/watch."""
        op_id = payload["op_id"]
        kind = OperationKind(payload["op"])
        pattern = decode_pattern(payload["pattern"])
        deadline = payload.get("deadline")
        tracer = self.instance.sim.obs.tracer
        retry_hint = (self.instance.config.admission_retry_floor
                      if self.admission is not None else None)
        lease = self._negotiate_serving_lease(kind, deadline)
        if lease is None:
            self.refused += 1
            if tracer is not None:
                tracer.lease_event(op_id, self.instance.name, "refused",
                                   reason=REFUSE_SERVING_LEASE)
            self.instance.flight_ring.append(
                self.instance.sim.now, "refuse", op_id, kind.value,
                origin, REFUSE_SERVING_LEASE)
            self._refuse(origin, op_id, REFUSE_SERVING_LEASE, retry_hint)
            return
        # Serving consumes a worker thread, allocated through the lease
        # manager's factory (3.1.1); an exhausted pool refuses the work.
        thread_token = self.instance.leases.threads.acquire()
        if thread_token is None:
            lease.release()
            self.refused += 1
            if tracer is not None:
                tracer.lease_event(op_id, self.instance.name, "refused",
                                   reason=REFUSE_THREADS)
            self.instance.flight_ring.append(
                self.instance.sim.now, "refuse", op_id, kind.value,
                origin, REFUSE_THREADS)
            self._refuse(origin, op_id, REFUSE_THREADS, retry_hint)
            return
        self.served += 1
        if tracer is not None:
            tracer.note(op_id, self.instance.name, "serve_started",
                        op=kind.value)
        if kind in (OperationKind.RDP, OperationKind.INP):
            self._serve_probe(origin, op_id, kind, pattern, lease, thread_token)
        else:
            self._serve_blocking(origin, op_id, kind, pattern, lease,
                                 thread_token)

    def _refuse(self, origin: str, op_id: str, reason: Optional[str],
                retry_after: Optional[float] = None) -> None:
        """Send the one structured QUERY_REFUSED shape every emitter uses."""
        if probes.SINK is not None:
            probes.emit("serving.refusal", node=self.instance.name,
                        op_id=op_id, reason=reason)
        payload: dict = {"kind": protocol.QUERY_REFUSED, "op_id": op_id,
                         "found": False, "reason": reason}
        if retry_after is not None:
            payload["retry_after"] = retry_after
        self.instance.send(origin, payload)

    def _negotiate_serving_lease(self, kind: OperationKind,
                                 deadline: Optional[float]) -> Optional[Lease]:
        duration = self.instance.config.serve_max_duration
        if deadline is not None:
            duration = min(duration, max(0.0, deadline))
        requester = SimpleLeaseRequester(LeaseTerms(duration=duration))
        try:
            return self.instance.leases.negotiate(requester, kind)
        except LeaseError:
            return None

    # ------------------------------------------------------------------
    # Probes: answer from the current local space
    # ------------------------------------------------------------------
    def _serve_probe(self, origin: str, op_id: str, kind: OperationKind,
                     pattern: Pattern, lease: Lease,
                     thread_token: Any) -> None:
        space = self.instance.space
        if kind is OperationKind.RDP:
            tup = space.rdp(pattern)
            self._reply(origin, op_id, tup)
            lease.release()
            thread_token.release()
            return
        entry = space.hold_match(pattern)
        if entry is None:
            self._reply(origin, op_id, None)
            lease.release()
            thread_token.release()
            return
        serving = Serving(op_id, origin, kind, pattern, lease,
                          thread_token=thread_token)
        serving.held_entry_id = entry.entry_id
        self._servings[op_id] = serving
        self._offer(serving, entry.tuple)

    # ------------------------------------------------------------------
    # Blocking: watch the local space until match / cancel / lease end
    # ------------------------------------------------------------------
    def _serve_blocking(self, origin: str, op_id: str, kind: OperationKind,
                        pattern: Pattern, lease: Lease,
                        thread_token: Any) -> None:
        serving = Serving(op_id, origin, kind, pattern, lease,
                          thread_token=thread_token)
        self._servings[op_id] = serving
        lease.on_end(lambda l, state: self._on_serving_lease_end(serving))
        self._register_watch(serving)

    def _register_watch(self, serving: Serving) -> None:
        if serving.closed:
            return
        # A non-destructive waiter notifies us of a match without consuming
        # it; for `in` we then try to hold the concrete entry ourselves.
        waiter = self.instance.space.rd(serving.pattern)
        serving.waiter = waiter
        if waiter.satisfied:
            self._on_watch_match(serving, waiter.event.value)
        else:
            waiter.event.add_callback(
                lambda event: self._on_watch_match(serving, event.value))

    def _on_watch_match(self, serving: Serving, tup: Tuple) -> None:
        if serving.closed or not serving.lease.active:
            return
        serving.waiter = None
        if serving.kind is OperationKind.RD:
            self._reply(serving.origin, serving.op_id, tup)
            self._close(serving)
            return
        entry = self.instance.space.hold_match(serving.pattern)
        if entry is None:
            # Someone consumed it between notification and hold; keep watching.
            self._register_watch(serving)
            return
        serving.held_entry_id = entry.entry_id
        self._offer(serving, entry.tuple)

    # ------------------------------------------------------------------
    # Offers and claims (destructive two-phase)
    # ------------------------------------------------------------------
    def _offer(self, serving: Serving, tup: Tuple) -> None:
        serving.offered = True
        self.offers_made += 1
        # The offer is a critical frame: a lost (or duplicated + reordered)
        # offer breaks exactly-once, so it travels reliably, with
        # retransmission effort bounded by the serving lease and by the
        # claim window (after which the hold self-releases anyway).
        deadline = self.instance.sim.now + self.instance.config.claim_timeout
        if serving.lease.expires_at is not None:
            deadline = min(deadline, serving.lease.expires_at)
        self._reply(serving.origin, serving.op_id, tup,
                    entry_id=serving.held_entry_id, deadline=deadline)
        serving.claim_timer = self.instance.sim.schedule(
            self.instance.config.claim_timeout, self._claim_timeout, serving)

    def handle_claim_accept(self, origin: str, payload: dict) -> None:
        """Origin took our offer: the held tuple is consumed for good."""
        serving = self._servings.get(payload["op_id"])
        if serving is None or serving.held_entry_id != payload.get("entry_id"):
            return
        self.offers_won += 1
        self.instance.space.confirm(serving.held_entry_id)
        serving.held_entry_id = None
        self._close(serving)

    def handle_claim_reject(self, origin: str, payload: dict) -> None:
        """Origin took a different offer: put the tuple back (section 3.1.3)."""
        serving = self._servings.get(payload["op_id"])
        if serving is None or serving.held_entry_id != payload.get("entry_id"):
            return
        self._put_back(serving)
        self._close(serving)

    def _claim_timeout(self, serving: Serving) -> None:
        """No accept/reject arrived: the origin is gone; put the tuple back."""
        if serving.closed or serving.held_entry_id is None:
            return
        tracer = self.instance.sim.obs.tracer
        if tracer is not None:
            tracer.note(serving.op_id, self.instance.name, "claim_timeout")
        self._put_back(serving)
        self._close(serving)

    def _put_back(self, serving: Serving) -> None:
        if serving.held_entry_id is not None:
            self.offers_put_back += 1
            tracer = self.instance.sim.obs.tracer
            if tracer is not None:
                tracer.note(serving.op_id, self.instance.name, "put_back",
                            entry_id=serving.held_entry_id)
            self.instance.space.release(serving.held_entry_id)
            serving.held_entry_id = None

    # ------------------------------------------------------------------
    # Cancellation and lease end
    # ------------------------------------------------------------------
    def handle_cancel(self, origin: str, payload: dict) -> None:
        """Origin withdrew the operation."""
        op_id = payload["op_id"]
        if op_id in self._queued_ids:
            # Withdrawn before a dispatch worker ever picked it up: the
            # queue entry is tombstoned (skipped at pump time).
            self._queued_ids.discard(op_id)
            return
        serving = self._servings.get(op_id)
        if serving is None:
            return
        self._put_back(serving)
        self._close(serving)

    def _on_serving_lease_end(self, serving: Serving) -> None:
        if serving.closed:
            return
        if serving.offered and serving.held_entry_id is not None:
            # An offer is outstanding: leave resolution to the claim timer.
            return
        self._close(serving)

    # ------------------------------------------------------------------
    def _close(self, serving: Serving) -> None:
        if serving.closed:
            return
        serving.closed = True
        if serving.waiter is not None:
            serving.waiter.cancel()
            serving.waiter = None
        if serving.claim_timer is not None:
            serving.claim_timer.cancel()
            serving.claim_timer = None
        if serving.lease.active:
            serving.lease.release()
        if serving.thread_token is not None:
            serving.thread_token.release()
            serving.thread_token = None
        self._servings.pop(serving.op_id, None)

    def _reply(self, origin: str, op_id: str, tup: Optional[Tuple],
               entry_id: Optional[int] = None,
               deadline: Optional[float] = None) -> None:
        payload = {"kind": protocol.QUERY_REPLY, "op_id": op_id,
                   "found": tup is not None}
        if tup is not None:
            payload["tuple"] = encode_tuple(tup)
        if entry_id is not None:
            payload["entry_id"] = entry_id
        if deadline is not None:
            self.instance.send_reliable(origin, payload, deadline=deadline)
        else:
            self.instance.send(origin, payload)

    # ------------------------------------------------------------------
    def close_all(self) -> None:
        """Close every serving (instance shutting down): held entries go
        back to the space, leases are returned, worker threads freed, and
        claim timers cancelled — nothing outlives the server."""
        self._queue.clear()
        self._queued_ids.clear()
        for serving in list(self._servings.values()):
            self._put_back(serving)
            self._close(serving)

    @property
    def active_servings(self) -> int:
        """Number of remote operations currently being worked on."""
        return len(self._servings)
