"""Serving side: how an instance works on *other* instances' operations.

When a QUERY arrives, the receiving instance first negotiates an internal
lease for the effort — "any Tiamat instance which, during the course of
performing an operation, places demands on another, is responsible for
negotiating any further leases" (section 2.5), and the lease manager is the
first point of contact for *any* operation (Figure 2).  A refusal is
reported back as QUERY_REFUSED and no work happens.

Probe queries are answered from the local space immediately.  Blocking
queries register a local watch that lives until a match, a CANCEL, or the
serving lease's expiry.  Destructive matches are **held** (two-phase) and
*offered* to the origin; the hold is resolved by CLAIM_ACCEPT (consume),
CLAIM_REJECT (put back), or a claim timeout (put back — the origin
evidently went away).
"""

from __future__ import annotations

from typing import Optional

from repro.core import protocol
from repro.errors import LeaseError
from repro.leasing import Lease, LeaseTerms, OperationKind, SimpleLeaseRequester
from repro.tuples import Pattern, Tuple, decode_pattern, encode_tuple


class Serving:
    """State for one remote operation this instance is working on."""

    __slots__ = ("op_id", "origin", "kind", "pattern", "lease", "waiter",
                 "held_entry_id", "offered", "claim_timer", "closed",
                 "thread_token")

    def __init__(self, op_id: str, origin: str, kind: OperationKind,
                 pattern: Pattern, lease: Lease, thread_token=None) -> None:
        self.op_id = op_id
        self.origin = origin
        self.kind = kind
        self.pattern = pattern
        self.lease = lease
        self.waiter = None
        self.held_entry_id: Optional[int] = None
        self.offered = False
        self.claim_timer = None
        self.closed = False
        self.thread_token = thread_token


class QueryServer:
    """The instance-side machinery for answering remote queries."""

    def __init__(self, instance) -> None:
        self.instance = instance
        self._servings: dict[str, Serving] = {}
        # statistics
        self.served = 0
        self.refused = 0
        self.offers_made = 0
        self.offers_won = 0
        self.offers_put_back = 0
        self.duplicate_queries = 0

    # ------------------------------------------------------------------
    # Query arrival
    # ------------------------------------------------------------------
    def handle_query(self, origin: str, payload: dict) -> None:
        """Entry point for a QUERY frame."""
        op_id = payload["op_id"]
        if op_id in self._servings:
            # A duplicated (or retransmitted) QUERY for work already in
            # progress: a second serving under the same id would overwrite
            # the first in the table, stranding its held entry, claim
            # timer, lease, and worker thread.  Destructive-path handlers
            # must be idempotent, so drop it.
            self.duplicate_queries += 1
            return
        kind = OperationKind(payload["op"])
        pattern = decode_pattern(payload["pattern"])
        deadline = payload.get("deadline")
        tracer = self.instance.sim.obs.tracer
        lease = self._negotiate_serving_lease(kind, deadline)
        if lease is None:
            self.refused += 1
            if tracer is not None:
                tracer.lease_event(op_id, self.instance.name, "refused",
                                   reason="serving_lease")
            self.instance.send(origin, {
                "kind": protocol.QUERY_REFUSED, "op_id": op_id, "found": False,
            })
            return
        # Serving consumes a worker thread, allocated through the lease
        # manager's factory (3.1.1); an exhausted pool refuses the work.
        thread_token = self.instance.leases.threads.acquire()
        if thread_token is None:
            lease.release()
            self.refused += 1
            if tracer is not None:
                tracer.lease_event(op_id, self.instance.name, "refused",
                                   reason="threads_exhausted")
            self.instance.send(origin, {
                "kind": protocol.QUERY_REFUSED, "op_id": op_id, "found": False,
            })
            return
        self.served += 1
        if tracer is not None:
            tracer.note(op_id, self.instance.name, "serve_started",
                        op=kind.value)
        if kind in (OperationKind.RDP, OperationKind.INP):
            self._serve_probe(origin, op_id, kind, pattern, lease, thread_token)
        else:
            self._serve_blocking(origin, op_id, kind, pattern, lease,
                                 thread_token)

    def _negotiate_serving_lease(self, kind: OperationKind,
                                 deadline: Optional[float]) -> Optional[Lease]:
        duration = self.instance.config.serve_max_duration
        if deadline is not None:
            duration = min(duration, max(0.0, deadline))
        requester = SimpleLeaseRequester(LeaseTerms(duration=duration))
        try:
            return self.instance.leases.negotiate(requester, kind)
        except LeaseError:
            return None

    # ------------------------------------------------------------------
    # Probes: answer from the current local space
    # ------------------------------------------------------------------
    def _serve_probe(self, origin: str, op_id: str, kind: OperationKind,
                     pattern: Pattern, lease: Lease, thread_token) -> None:
        space = self.instance.space
        if kind is OperationKind.RDP:
            tup = space.rdp(pattern)
            self._reply(origin, op_id, tup)
            lease.release()
            thread_token.release()
            return
        entry = space.hold_match(pattern)
        if entry is None:
            self._reply(origin, op_id, None)
            lease.release()
            thread_token.release()
            return
        serving = Serving(op_id, origin, kind, pattern, lease,
                          thread_token=thread_token)
        serving.held_entry_id = entry.entry_id
        self._servings[op_id] = serving
        self._offer(serving, entry.tuple)

    # ------------------------------------------------------------------
    # Blocking: watch the local space until match / cancel / lease end
    # ------------------------------------------------------------------
    def _serve_blocking(self, origin: str, op_id: str, kind: OperationKind,
                        pattern: Pattern, lease: Lease, thread_token) -> None:
        serving = Serving(op_id, origin, kind, pattern, lease,
                          thread_token=thread_token)
        self._servings[op_id] = serving
        lease.on_end(lambda l, state: self._on_serving_lease_end(serving))
        self._register_watch(serving)

    def _register_watch(self, serving: Serving) -> None:
        if serving.closed:
            return
        # A non-destructive waiter notifies us of a match without consuming
        # it; for `in` we then try to hold the concrete entry ourselves.
        waiter = self.instance.space.rd(serving.pattern)
        serving.waiter = waiter
        if waiter.satisfied:
            self._on_watch_match(serving, waiter.event.value)
        else:
            waiter.event.add_callback(
                lambda event: self._on_watch_match(serving, event.value))

    def _on_watch_match(self, serving: Serving, tup: Tuple) -> None:
        if serving.closed or not serving.lease.active:
            return
        serving.waiter = None
        if serving.kind is OperationKind.RD:
            self._reply(serving.origin, serving.op_id, tup)
            self._close(serving)
            return
        entry = self.instance.space.hold_match(serving.pattern)
        if entry is None:
            # Someone consumed it between notification and hold; keep watching.
            self._register_watch(serving)
            return
        serving.held_entry_id = entry.entry_id
        self._offer(serving, entry.tuple)

    # ------------------------------------------------------------------
    # Offers and claims (destructive two-phase)
    # ------------------------------------------------------------------
    def _offer(self, serving: Serving, tup: Tuple) -> None:
        serving.offered = True
        self.offers_made += 1
        # The offer is a critical frame: a lost (or duplicated + reordered)
        # offer breaks exactly-once, so it travels reliably, with
        # retransmission effort bounded by the serving lease and by the
        # claim window (after which the hold self-releases anyway).
        deadline = self.instance.sim.now + self.instance.config.claim_timeout
        if serving.lease.expires_at is not None:
            deadline = min(deadline, serving.lease.expires_at)
        self._reply(serving.origin, serving.op_id, tup,
                    entry_id=serving.held_entry_id, deadline=deadline)
        serving.claim_timer = self.instance.sim.schedule(
            self.instance.config.claim_timeout, self._claim_timeout, serving)

    def handle_claim_accept(self, origin: str, payload: dict) -> None:
        """Origin took our offer: the held tuple is consumed for good."""
        serving = self._servings.get(payload["op_id"])
        if serving is None or serving.held_entry_id != payload.get("entry_id"):
            return
        self.offers_won += 1
        self.instance.space.confirm(serving.held_entry_id)
        serving.held_entry_id = None
        self._close(serving)

    def handle_claim_reject(self, origin: str, payload: dict) -> None:
        """Origin took a different offer: put the tuple back (section 3.1.3)."""
        serving = self._servings.get(payload["op_id"])
        if serving is None or serving.held_entry_id != payload.get("entry_id"):
            return
        self._put_back(serving)
        self._close(serving)

    def _claim_timeout(self, serving: Serving) -> None:
        """No accept/reject arrived: the origin is gone; put the tuple back."""
        if serving.closed or serving.held_entry_id is None:
            return
        tracer = self.instance.sim.obs.tracer
        if tracer is not None:
            tracer.note(serving.op_id, self.instance.name, "claim_timeout")
        self._put_back(serving)
        self._close(serving)

    def _put_back(self, serving: Serving) -> None:
        if serving.held_entry_id is not None:
            self.offers_put_back += 1
            tracer = self.instance.sim.obs.tracer
            if tracer is not None:
                tracer.note(serving.op_id, self.instance.name, "put_back",
                            entry_id=serving.held_entry_id)
            self.instance.space.release(serving.held_entry_id)
            serving.held_entry_id = None

    # ------------------------------------------------------------------
    # Cancellation and lease end
    # ------------------------------------------------------------------
    def handle_cancel(self, origin: str, payload: dict) -> None:
        """Origin withdrew the operation."""
        serving = self._servings.get(payload["op_id"])
        if serving is None:
            return
        self._put_back(serving)
        self._close(serving)

    def _on_serving_lease_end(self, serving: Serving) -> None:
        if serving.closed:
            return
        if serving.offered and serving.held_entry_id is not None:
            # An offer is outstanding: leave resolution to the claim timer.
            return
        self._close(serving)

    # ------------------------------------------------------------------
    def _close(self, serving: Serving) -> None:
        if serving.closed:
            return
        serving.closed = True
        if serving.waiter is not None:
            serving.waiter.cancel()
            serving.waiter = None
        if serving.claim_timer is not None:
            serving.claim_timer.cancel()
            serving.claim_timer = None
        if serving.lease.active:
            serving.lease.release()
        if serving.thread_token is not None:
            serving.thread_token.release()
            serving.thread_token = None
        self._servings.pop(serving.op_id, None)

    def _reply(self, origin: str, op_id: str, tup: Optional[Tuple],
               entry_id: Optional[int] = None,
               deadline: Optional[float] = None) -> None:
        payload = {"kind": protocol.QUERY_REPLY, "op_id": op_id,
                   "found": tup is not None}
        if tup is not None:
            payload["tuple"] = encode_tuple(tup)
        if entry_id is not None:
            payload["entry_id"] = entry_id
        if deadline is not None:
            self.instance.send_reliable(origin, payload, deadline=deadline)
        else:
            self.instance.send(origin, payload)

    # ------------------------------------------------------------------
    def close_all(self) -> None:
        """Close every serving (instance shutting down): held entries go
        back to the space, leases are returned, worker threads freed, and
        claim timers cancelled — nothing outlives the server."""
        for serving in list(self._servings.values()):
            self._put_back(serving)
            self._close(serving)

    @property
    def active_servings(self) -> int:
        """Number of remote operations currently being worked on."""
        return len(self._servings)
