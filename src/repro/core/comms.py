"""The communications manager: peer discovery and the visibility list.

Section 3.1.3 in full: the communications manager "is responsible for
contacting remote instances of Tiamat, propagating any operations to remote
nodes, receiving the results of those operations and receiving requests for
operations from other instances".  Its performance-critical structure is the
**known-peer list**:

* instances responding to a discovery multicast are appended to the
  *bottom* of the list;
* operation propagation always starts from the *top*;
* peers that fail to respond are removed;
* hence "consistently visible instances work their way to the top of the
  list and, therefore, will be the first to be contacted when an operation
  is performed".

The T1 bench compares this against the ``"multicast"`` strategy (a fresh
discovery multicast for every operation).
"""

from __future__ import annotations

import itertools

from repro.net.network import NetworkInterface
from repro.core import protocol
from repro.core.config import TiamatConfig
from repro.sim.events import Event
from repro.sim.kernel import Simulator


class CommsManager:
    """Known-peer list maintenance and the discovery protocol."""

    def __init__(self, sim: Simulator, iface: NetworkInterface, config: TiamatConfig) -> None:
        self.sim = sim
        self.iface = iface
        self.config = config
        self.known: list[str] = []
        self._discoveries: dict[int, dict] = {}
        self._discovery_ids = itertools.count(1)
        # statistics
        self.multicasts = 0
        self.removals = 0

    # ------------------------------------------------------------------
    # The known-peer list
    # ------------------------------------------------------------------
    def plan(self) -> list[str]:
        """Peers to contact, in priority order (top of the list first)."""
        return list(self.known)

    def note_alive(self, peer: str) -> None:
        """Record that ``peer`` responded; new responders join the bottom."""
        if peer != self.iface.name and peer not in self.known:
            self.known.append(peer)

    def note_dead(self, peer: str) -> None:
        """Remove a non-responding peer from the list."""
        if peer in self.known:
            self.known.remove(peer)
            self.removals += 1

    # ------------------------------------------------------------------
    # Discovery
    # ------------------------------------------------------------------
    def discover(self) -> Event:
        """Multicast a discovery probe; the event yields the responder list.

        Responders are also appended to the known list (bottom), so a
        subsequent :meth:`plan` includes them.  The event succeeds after
        ``config.discover_window`` with the list of *new* responders (those
        not already known when the probe went out).
        """
        did = next(self._discovery_ids)
        session = {
            "responders": [],
            "already_known": set(self.known),
            "event": self.sim.event(),
        }
        self._discoveries[did] = session
        self.multicasts += 1
        self.iface.multicast({"kind": protocol.DISCOVER, "did": did,
                              "src": self.iface.name})
        self.sim.schedule(self.config.discover_window, self._close_discovery, did)
        return session["event"]

    def on_discover_ack(self, peer: str, did: int) -> None:
        """Handle a DISCOVER_ACK (called by the instance's dispatcher)."""
        self.note_alive(peer)
        session = self._discoveries.get(did)
        if session is not None and peer not in session["responders"]:
            session["responders"].append(peer)

    def _close_discovery(self, did: int) -> None:
        session = self._discoveries.pop(did, None)
        if session is None:
            return
        fresh = [p for p in session["responders"] if p not in session["already_known"]]
        session["event"].succeed(fresh)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CommsManager {self.iface.name} known={self.known}>"
