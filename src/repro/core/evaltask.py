"""``eval``: active tuples.

"In the case of eval the tuple is considered active and contains some
computation which must be carried out before the resultant tuple becomes
available" (section 2.1).  And under leasing: "for the eval operation, when
the lease expires the resultant computation (if it has not already
finished) may be halted and the tuple may be removed" (section 2.5).

In the simulation an active tuple is a callable plus a virtual compute
time.  The computation runs as a simulation process charged against the
eval lease; if the lease ends first, the process is interrupted and no
tuple ever appears.  On success the resultant tuple is deposited in the
local space with the remainder of the same lease as its lifetime.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import MalformedTupleError, ProcessInterrupt
from repro.leasing import Lease
from repro.sim.events import Event
from repro.tuples import Tuple


class EvalTask:
    """A running (or finished) active-tuple computation.

    ``event`` succeeds with the resultant :class:`Tuple` once it has been
    deposited, or with ``None`` if the lease ended before the computation
    finished.
    """

    def __init__(self, instance, fn: Callable[..., Tuple], args: tuple,
                 compute_time: float, lease: Lease) -> None:
        self.instance = instance
        self.fn = fn
        self.args = args
        self.compute_time = compute_time
        self.lease = lease
        self.event: Event = instance.sim.event()
        self.result: Optional[Tuple] = None
        self.halted = False
        self._process = instance.sim.spawn(self._run())
        lease.on_end(self._on_lease_end)

    def _run(self):
        try:
            yield self.instance.sim.timeout(self.compute_time)
        except ProcessInterrupt:
            self.halted = True
            if not self.event.triggered:
                self.event.succeed(None)
            return
        result = self.fn(*self.args)
        if not isinstance(result, Tuple):
            error = MalformedTupleError(
                f"eval computation returned {result!r}, not a Tuple")
            self.event.fail(error)
            raise error
        self.result = result
        self.instance.deposit_eval_result(result, self.lease)
        self.event.succeed(result)

    def _on_lease_end(self, lease: Lease, state) -> None:
        # Lease ended: halt the computation if it is still running.  (If it
        # already finished, the resultant tuple's expiry is handled by the
        # space, which shares the lease's deadline.)
        if self.result is None and not self.halted and self._process.alive:
            self._process.interrupt("eval lease ended")

    @property
    def finished(self) -> bool:
        """True once the computation produced its tuple or was halted."""
        return self.event.triggered

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "halted" if self.halted else ("done" if self.result else "running")
        return f"<EvalTask {state} compute_time={self.compute_time}>"
