"""Origin-side operation engine: how an instance runs the six Linda ops
over its opportunistic logical tuple space.

An :class:`Operation` is the handle returned to the application.  Its
``event`` succeeds with the matching :class:`~repro.tuples.Tuple` — or with
``None`` if the operation's lease expired first (the model's deliberate
semantic alteration for blocking operations, section 2.5).  ``source``
records which instance supplied the tuple, enabling the reply-to-origin
``out`` variant of section 2.4.

Operation shapes:

* **probes** (``rdp``/``inp``) sample the *current* logical space: the local
  space first, then known peers contacted sequentially from the top of the
  visibility list, then (if still unsatisfied) a discovery multicast and
  the fresh responders — each contact gated on the lease's remote budget.
* **blocking** (``rd``/``in``) register a local waiter *and* fan the query
  out to peers, which register waiters of their own; the first match wins.
  For destructive ``in`` the remote match is *held* and offered; the origin
  accepts exactly one offer and rejects the rest, so exactly one tuple is
  consumed network-wide.
* In ``continuous`` propagation mode, instances that become visible during
  the operation's lease are contacted as they appear.
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.check import probes
from repro.core import protocol
from repro.core.admission import Refusal, parse_refusal
from repro.leasing import Lease, OperationKind
from repro.sim.events import AnyOf, Event
from repro.tuples import Pattern, Tuple, encode_pattern
from repro.tuples.serialization import decode_tuple

_op_seq = itertools.count(1)


class Operation:
    """A running (or finished) logical-tuple-space operation."""

    def __init__(self, instance, kind: OperationKind, pattern: Optional[Pattern],
                 lease: Lease) -> None:
        self.instance = instance
        self.kind = kind
        self.pattern = pattern
        self.lease = lease
        self.op_id = f"{instance.name}#{next(_op_seq)}"
        self.started_at: float = instance.sim.now
        self.target: Optional[str] = None  # set for handle-directed variants
        self.event: Event = instance.sim.event()
        self.done = False
        self.result: Optional[Tuple] = None
        self.source: Optional[str] = None
        self.contacted: list[str] = []
        #: Structured refusals received so far (one :class:`Refusal` per
        #: QUERY_REFUSED frame), so callers can distinguish "nothing
        #: matched" from "the peer shed the work, retry in 0.3 s".
        self.refusals: list[Refusal] = []
        self._closed_peers: set[str] = set()
        self._local_waiter = None
        self._reply_events: dict[str, Event] = {}
        self._unsubscribe_visibility = None
        self._unsubscribe_fabric = None
        self._refusal_attempts: dict[str, int] = {}
        lease.on_end(self._on_lease_end)

    # ------------------------------------------------------------------
    # Public surface
    # ------------------------------------------------------------------
    @property
    def satisfied(self) -> bool:
        """True when the operation finished with a match."""
        return self.done and self.result is not None

    def cancel(self) -> None:
        """Abort the operation (its event succeeds with None)."""
        self._finalize(None, None)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Kick off the operation (called by the instance)."""
        if self.target is not None:
            self._start_directed()
        elif self.kind in (OperationKind.INP, OperationKind.RDP):
            self.instance.sim.spawn(self._probe_process())
        else:
            self._start_blocking()

    def _start_directed(self) -> None:
        """Handle-directed variant: only the named remote space is used.

        No local probe, no discovery, no fan-out — "perform the operation
        requested on the remote space specified" (section 2.4).
        """
        if self.kind in (OperationKind.INP, OperationKind.RDP):
            self.instance.sim.spawn(self._directed_probe_process())
        else:
            self._contact_blocking(self.target)
            if self.target not in self.contacted:
                # Not visible (or no remote budget): the operation cannot
                # reach its designated space.
                self._finalize(None, None)

    def _directed_probe_process(self):
        yield from self._probe_peers([self.target])
        if not self.done:
            self._finalize(None, None)

    def _on_lease_end(self, lease, state) -> None:
        # Fired for expiry and revocation; also for our own release in
        # _finalize, which the `done` guard absorbs.
        if not self.done:
            self._finalize(None, None)

    def _finalize(self, result: Optional[Tuple], source: Optional[str]) -> None:
        if self.done:
            return
        self.done = True
        self.result = result
        self.source = source
        if probes.SINK is not None:
            probes.emit("op.finished", op_id=self.op_id, node=self.instance.name,
                        kind=self.kind.value, satisfied=result is not None,
                        source=source, tup=result)
        if self._local_waiter is not None:
            self._local_waiter.cancel()
            self._local_waiter = None
        if self._unsubscribe_visibility is not None:
            self._unsubscribe_visibility()
            self._unsubscribe_visibility = None
        if self._unsubscribe_fabric is not None:
            self._unsubscribe_fabric()
            self._unsubscribe_fabric = None
        # Withdraw the operation from every peer still working on it
        # (peers that already answered have nothing ongoing to cancel).
        for peer in self.contacted:
            if peer != source and peer not in self._closed_peers:
                self.instance.send(peer, {"kind": protocol.CANCEL, "op_id": self.op_id})
        if self.lease.active:
            self.lease.release()
        obs = self.instance.sim.obs
        if obs.tracer is not None:
            obs.tracer.op_finished(self.op_id, self.instance.name,
                                   result is not None, source)
        now = self.instance.sim.now
        self.instance.flight_ring.append(
            now, "op_end", self.op_id, self.kind.value, source,
            "ok" if result is not None else "miss")
        obs.slo.record(self.kind.value, now - self.started_at, self.op_id,
                       self.instance.name, ring=self.instance.flight_ring)
        self.event.succeed(result)
        self.instance._operation_finished(self)

    # ------------------------------------------------------------------
    # Probe engine (rdp / inp)
    # ------------------------------------------------------------------
    def _probe_local(self) -> Optional[Tuple]:
        space = self.instance.space
        if self.kind is OperationKind.RDP:
            return space.rdp(self.pattern)
        return space.inp(self.pattern)

    def _probe_process(self):
        local = self._probe_local()
        if local is not None:
            self._finalize(local, self.instance.name)
            return
        fabric = self.instance.fabric
        if fabric is not None and fabric.active() and fabric.routes(self.pattern):
            # Fabric routing: contact the shard's O(k) owner set (or the
            # bounded scatter for a wildcard prefix).  No discovery, no
            # union walk — that is the whole point.
            yield from self._probe_peers(fabric.plan(self.pattern))
            if not self.done:
                self._finalize(None, None)
            return
        comms = self.instance.comms
        if self.instance.config.comms_strategy == "multicast":
            yield comms.discover()
            yield from self._probe_peers(comms.plan())
        else:
            yield from self._probe_peers(comms.plan())
            if not self.done and self.lease.active:
                fresh = yield comms.discover()
                if not self.done:
                    yield from self._probe_peers(fresh)
        if not self.done:
            self._finalize(None, None)

    def _probe_peers(self, peers: list[str]):
        """Contact peers one at a time, top of the list first."""
        sim = self.instance.sim
        for peer in peers:
            if self.done or not self.lease.active:
                return
            if peer in self.contacted:
                continue
            if not self.lease.use_remote():
                return
            reply_event = sim.event()
            self._reply_events[peer] = reply_event
            if not self._send_query(peer):
                self.lease.remotes_used -= 1  # a failed send is not a contact
                self.instance.comms.note_dead(peer)
                self._reply_events.pop(peer, None)
                continue
            self.contacted.append(peer)
            timeout = sim.timeout(self.instance.config.peer_timeout)
            outcome = yield AnyOf(sim, [reply_event, timeout])
            timeout.cancel()
            self._reply_events.pop(peer, None)
            if self.done:
                return
            if reply_event not in outcome:
                self.instance.comms.note_dead(peer)
                continue
            payload = reply_event.value
            if payload.get("found"):
                tup = decode_tuple(payload["tuple"])
                if self.kind is OperationKind.INP:
                    self.instance.note_remote_consume(peer, payload["entry_id"])
                    self.instance.send_reliable(peer, {
                        "kind": protocol.CLAIM_ACCEPT,
                        "op_id": self.op_id,
                        "entry_id": payload["entry_id"],
                    }, deadline=self._claim_deadline())
                self._finalize(tup, peer)
                return
            # negative reply: peer is alive, move down the list

    # ------------------------------------------------------------------
    # Blocking engine (rd / in)
    # ------------------------------------------------------------------
    def _start_blocking(self) -> None:
        space = self.instance.space
        if self.kind is OperationKind.RD:
            waiter = space.rd(self.pattern)
        else:
            waiter = space.in_(self.pattern)
        if waiter.satisfied:
            self._finalize(waiter.event.value, self.instance.name)
            return
        self._local_waiter = waiter
        waiter.event.add_callback(self._on_local_match)
        fabric = self.instance.fabric
        if fabric is not None and fabric.active() and fabric.routes(self.pattern):
            # Contact the owner set now and re-plan whenever the shard map
            # changes (a promotion or handoff can move the match's home
            # mid-wait); the map subscription replaces discovery fan-out.
            self._unsubscribe_fabric = fabric.on_change(self._on_fabric_change)
            peers = fabric.plan(self.pattern)
            if peers:
                self._contact_blocking(peers[0])
            # Backup owners are insurance: in steady state the match lives
            # at its shard primary, so immediate fan-out to the whole
            # owner set pays k frames for every operation.  Stagger the
            # rest behind half a peer-timeout each — failover costs a
            # little latency, the common case costs O(1) frames.
            stagger = self.instance.config.peer_timeout / 2
            for i, peer in enumerate(peers[1:], start=1):
                self.instance.sim.schedule(i * stagger,
                                           self._contact_backup, peer)
            return
        if self.instance.config.propagate_mode == "continuous":
            self._unsubscribe_visibility = (
                self.instance.network.visibility.on_edge_change(self._on_edge_change)
            )
        self.instance.sim.spawn(self._blocking_contact_process())

    def _blocking_contact_process(self):
        comms = self.instance.comms
        plan = comms.plan()
        if self.instance.config.comms_strategy == "multicast" or not plan:
            yield comms.discover()
            plan = comms.plan()
        for peer in plan:
            if self.done or not self.lease.active:
                return
            self._contact_blocking(peer)
        if self.instance.config.comms_strategy != "mru":
            return
        # "If the end of the list is reached, and the request is not
        # satisfied, then another multicast may be used to try and find
        # more instances" (3.1.3).  Give the contacted peers one
        # peer-timeout of grace before spending the multicast.
        yield self.instance.sim.timeout(self.instance.config.peer_timeout)
        if self.done or not self.lease.active:
            return
        yield comms.discover()
        if self.done or not self.lease.active:
            return
        for peer in comms.plan():
            if self.done:
                return
            self._contact_blocking(peer)

    def _contact_blocking(self, peer: str) -> None:
        if peer in self.contacted or peer == self.instance.name:
            return
        if not self.lease.use_remote():
            return
        if not self._send_query(peer):
            self.lease.remotes_used -= 1
            self.instance.comms.note_dead(peer)
            return
        self.contacted.append(peer)

    def _contact_backup(self, peer: str) -> None:
        """Deferred contact of a backup shard owner (see _start_blocking)."""
        if self.done or not self.lease.active:
            return
        self._contact_blocking(peer)

    def _on_local_match(self, event: Event) -> None:
        self._local_waiter = None
        self._finalize(event.value, self.instance.name)

    def _on_fabric_change(self) -> None:
        """Shard map changed: contact any owners not yet holding the query.

        Re-plans without re-recording scatter width (one sample per
        logical operation).  Peers already contacted keep their standing
        query; ``_contact_blocking`` dedups them.
        """
        if self.done or not self.lease.active:
            return
        for peer in self.instance.fabric.plan(self.pattern, record=False):
            if self.done:
                return
            self._contact_blocking(peer)

    def _on_edge_change(self, a: str, b: str, visible: bool) -> None:
        """Continuous propagation: contact instances that become visible."""
        if self.done or not visible:
            return
        me = self.instance.name
        if me not in (a, b):
            return
        peer = b if a == me else a
        self.instance.comms.note_alive(peer)
        self._contact_blocking(peer)

    # ------------------------------------------------------------------
    # Message-driven callbacks (invoked by the instance dispatcher)
    # ------------------------------------------------------------------
    def deliver_reply(self, peer: str, payload: dict) -> None:
        """A QUERY_REPLY / QUERY_REFUSED arrived for this operation."""
        self.instance.comms.note_alive(peer)
        self._closed_peers.add(peer)
        refused = payload.get("kind") == protocol.QUERY_REFUSED
        if refused:
            self.refusals.append(parse_refusal(peer, payload))
        pending = self._reply_events.get(peer)
        if pending is not None and not pending.triggered:
            # A probe is synchronously waiting on this peer.
            pending.succeed(payload)
            return
        if refused or not payload.get("found"):
            if refused:
                self._maybe_backoff_retry(self.refusals[-1])
            return
        # Unsolicited positive reply: a blocking operation's match (or a
        # probe reply that arrived after its per-peer timeout).
        entry_id = payload.get("entry_id")
        if self.done:
            if entry_id is not None:
                self.instance.send_reliable(peer, {
                    "kind": protocol.CLAIM_REJECT,
                    "op_id": self.op_id,
                    "entry_id": entry_id,
                }, deadline=self._claim_deadline())
            return
        tup = decode_tuple(payload["tuple"])
        if entry_id is not None:
            self.instance.note_remote_consume(peer, entry_id)
            self.instance.send_reliable(peer, {
                "kind": protocol.CLAIM_ACCEPT,
                "op_id": self.op_id,
                "entry_id": entry_id,
            }, deadline=self._claim_deadline())
        self._finalize(tup, peer)

    # ------------------------------------------------------------------
    # Backoff after a shed refusal (admission control, honoring the hint)
    # ------------------------------------------------------------------
    def _maybe_backoff_retry(self, refusal: Refusal) -> None:
        """Re-contact a refusing peer after capped exponential backoff.

        Only blocking operations retry (probes have their own move-on
        ladder), and only refusals carrying a ``retry_after`` hint — i.e.
        admission-control sheds — trigger it, so behaviour against
        uncontrolled peers is unchanged.  The delay honours the hint as a
        floor, grows exponentially with the per-peer attempt count, is
        capped, and carries multiplicative jitter so synchronized losers
        do not re-arrive in lockstep.  Every retry still spends one unit
        of the lease's remote budget: backoff is lease-priced, not free.
        """
        if (self.done or refusal.retry_after is None
                or self.kind not in (OperationKind.RD, OperationKind.IN)
                or not self.instance.config.backoff_on_refusal
                or not self.lease.active):
            return
        config = self.instance.config
        peer = refusal.peer
        attempt = self._refusal_attempts.get(peer, 0)
        self._refusal_attempts[peer] = attempt + 1
        delay = min(config.retry_initial * (config.retry_backoff ** attempt),
                    config.retry_max_interval)
        delay = max(delay, refusal.retry_after)
        rng = self.instance.sim.rng(f"backoff/{self.instance.name}")
        delay *= 1.0 + config.retry_jitter * rng.random()
        remaining = self.lease.remaining_time(self.instance.sim.now)
        if remaining is not None and delay >= remaining:
            return  # the lease will have ended; a retry could not be served
        self.instance.sim.schedule(delay, self._retry_refused, peer)

    def _retry_refused(self, peer: str) -> None:
        if self.done or not self.lease.active:
            return
        # Forget the previous contact so _contact_blocking re-sends (the
        # retry consumes a fresh unit of the lease's remote budget).
        if peer in self.contacted:
            self.contacted.remove(peer)
        self._closed_peers.discard(peer)
        self._contact_blocking(peer)

    def _claim_deadline(self) -> float:
        """How long claim-resolution frames may be retransmitted.

        Bounded by the operation's lease (the only effort budget, §2.5) and
        by the serving side's claim window — after ``claim_timeout`` the
        holder has already resolved the claim locally, so further retries
        are pure waste.  A lease that has already expired yields a deadline
        in the past: the frame is sent once and never retried.
        """
        deadline = self.instance.sim.now + self.instance.config.claim_timeout
        if self.lease.expires_at is not None:
            deadline = min(deadline, self.lease.expires_at)
        return deadline

    # ------------------------------------------------------------------
    def _send_query(self, peer: str) -> bool:
        remaining = self.lease.remaining_time(self.instance.sim.now)
        payload = {
            "kind": protocol.QUERY,
            "op_id": self.op_id,
            "op": self.kind.value,
            "pattern": encode_pattern(self.pattern),
            "deadline": remaining,
        }
        if self.kind in (OperationKind.RD, OperationKind.IN):
            # A blocking operation contacts each peer exactly once; a lost
            # QUERY would silently amputate that peer from the logical
            # space for the operation's whole lifetime (probes, by
            # contrast, have their own timeout-and-move-on ladder).  So
            # blocking QUERYs travel reliably, with retransmission effort
            # bounded by the operation's lease — still the only budget.
            if not self.instance.iface.is_visible(peer):
                return False
            return self.instance.send_reliable(
                peer, payload, deadline=self.lease.expires_at)
        return self.instance.send(peer, payload)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.done else "open"
        return f"<Operation {self.op_id} {self.kind.value} {state}>"
