"""Wire protocol constants for the Tiamat inter-instance messages.

Every frame payload is ``{"kind": <constant>, ...}``.  The protocol has
four message families:

discovery
    ``DISCOVER`` (multicast) / ``DISCOVER_ACK`` — the paper's prototype
    mechanism: "when an operation is performed the Tiamat instance involved
    sends out a multicast packet.  Other instances which receive this
    packet respond, informing the sender of the address and port number on
    which they should be contacted" (section 3.1.3).

operation propagation
    ``QUERY`` carries an encoded antituple plus the operation kind and the
    remaining lease time; ``QUERY_REPLY`` answers with a match (and, for
    destructive operations, the held entry id), ``QUERY_REFUSED`` signals
    the serving instance declined to dedicate effort, and ``CANCEL``
    withdraws an operation (satisfied elsewhere or lease over).  Every
    ``QUERY_REFUSED`` carries a structured ``reason`` (one of
    :data:`repro.core.admission.ALL_REFUSAL_REASONS` — serving-lease
    refusal, thread exhaustion, queue overflow, unmeetable deadline, or
    fair-share throttling) and, when the server runs an admission
    controller, a ``retry_after`` hint in seconds that origins fold into
    their capped exponential backoff (see ``docs/PROTOCOL.md`` section 9).

claim resolution
    ``CLAIM_ACCEPT`` / ``CLAIM_REJECT`` implement first-responder-wins for
    destructive matches: the origin accepts exactly one offer; every other
    offering instance is told to put its tuple back.

remote deposit
    ``REMOTE_OUT`` / ``REMOTE_OUT_ACK`` are the handle-directed ``out``
    (section 2.4); ``RELAY_OUT`` is the optional routing of a reply-bound
    tuple through a third instance when the destination is not visible.

reliability
    ``REL_ACK`` acknowledges receipt of a *reliable* frame (one carrying
    ``rseq``/``repoch`` fields added by
    :class:`~repro.core.reliability.ReliableChannel`).  The ack itself is
    never reliable: a lost ``REL_ACK`` simply triggers a retransmission of
    the data frame, which the receiver's dedup window absorbs and re-acks.

anti-entropy rejoin
    ``SYNC_REQUEST`` / ``SYNC_RESPONSE`` reconcile a durably-recovered
    instance with its live peers.  The restarted node replays its
    write-ahead log with the restored tuples *quarantined* (held,
    invisible) and asks each visible peer which of its entry ids the peer
    witnessed being consumed while it was down; the response lets it purge
    tuples whose destructive ``in`` committed remotely before the crash —
    without it a torn removal record would resurrect them as ghosts (see
    ``docs/PROTOCOL.md`` section 10).
"""

from __future__ import annotations

DISCOVER = "discover"
DISCOVER_ACK = "discover_ack"

QUERY = "query"
QUERY_REPLY = "query_reply"
QUERY_REFUSED = "query_refused"
CANCEL = "cancel"

CLAIM_ACCEPT = "claim_accept"
CLAIM_REJECT = "claim_reject"

REMOTE_OUT = "remote_out"
REMOTE_OUT_ACK = "remote_out_ack"
RELAY_OUT = "relay_out"

REL_ACK = "rel_ack"

SYNC_REQUEST = "sync_request"
SYNC_RESPONSE = "sync_response"

#: Every kind, for validation and stats bucketing.
ALL_KINDS = frozenset({
    DISCOVER, DISCOVER_ACK,
    QUERY, QUERY_REPLY, QUERY_REFUSED, CANCEL,
    CLAIM_ACCEPT, CLAIM_REJECT,
    REMOTE_OUT, REMOTE_OUT_ACK, RELAY_OUT,
    REL_ACK,
    SYNC_REQUEST, SYNC_RESPONSE,
})
