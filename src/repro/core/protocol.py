"""Wire protocol constants for the Tiamat inter-instance messages.

Every frame payload is ``{"kind": <constant>, ...}``.  The protocol has
four message families:

discovery
    ``DISCOVER`` (multicast) / ``DISCOVER_ACK`` — the paper's prototype
    mechanism: "when an operation is performed the Tiamat instance involved
    sends out a multicast packet.  Other instances which receive this
    packet respond, informing the sender of the address and port number on
    which they should be contacted" (section 3.1.3).

operation propagation
    ``QUERY`` carries an encoded antituple plus the operation kind and the
    remaining lease time; ``QUERY_REPLY`` answers with a match (and, for
    destructive operations, the held entry id), ``QUERY_REFUSED`` signals
    the serving instance declined to dedicate effort, and ``CANCEL``
    withdraws an operation (satisfied elsewhere or lease over).  Every
    ``QUERY_REFUSED`` carries a structured ``reason`` (one of
    :data:`repro.core.admission.ALL_REFUSAL_REASONS` — serving-lease
    refusal, thread exhaustion, queue overflow, unmeetable deadline, or
    fair-share throttling) and, when the server runs an admission
    controller, a ``retry_after`` hint in seconds that origins fold into
    their capped exponential backoff (see ``docs/PROTOCOL.md`` section 9).

claim resolution
    ``CLAIM_ACCEPT`` / ``CLAIM_REJECT`` implement first-responder-wins for
    destructive matches: the origin accepts exactly one offer; every other
    offering instance is told to put its tuple back.

remote deposit
    ``REMOTE_OUT`` / ``REMOTE_OUT_ACK`` are the handle-directed ``out``
    (section 2.4); ``RELAY_OUT`` is the optional routing of a reply-bound
    tuple through a third instance when the destination is not visible.

reliability
    ``REL_ACK`` acknowledges receipt of a *reliable* frame (one carrying
    ``rseq``/``repoch`` fields added by
    :class:`~repro.core.reliability.ReliableChannel`).  The ack itself is
    never reliable: a lost ``REL_ACK`` simply triggers a retransmission of
    the data frame, which the receiver's dedup window absorbs and re-acks.

anti-entropy rejoin
    ``SYNC_REQUEST`` / ``SYNC_RESPONSE`` reconcile a durably-recovered
    instance with its live peers.  The restarted node replays its
    write-ahead log with the restored tuples *quarantined* (held,
    invisible) and asks each visible peer which of its entry ids the peer
    witnessed being consumed while it was down; the response lets it purge
    tuples whose destructive ``in`` committed remotely before the crash —
    without it a torn removal record would resurrect them as ghosts (see
    ``docs/PROTOCOL.md`` section 10).  A ``SYNC_REQUEST`` may carry an
    ``owner`` field naming a *third* instance: the fabric's promotion path
    asks live peers for consume witnesses of a dead member's entries
    before releasing its quarantined replicas (section 11.3).

fabric
    The sharded + replicated tuple-space fabric (opt-in via
    ``TiamatConfig(fabric=...)``, ``docs/PROTOCOL.md`` section 11).
    ``FABRIC_MAP`` gossips the lease-governed shard map; a short map
    digest also piggybacks on ordinary frames (payload key ``"fmd"``) so
    skewed peers reconcile between heartbeats.  ``FABRIC_OUT`` routes a
    deposit to its shard's primary owner; ``FABRIC_REPL`` copies a primary
    to its k-1 successor owners (quarantined); ``FABRIC_INVAL`` retires
    replicas of a consumed or expired primary; ``FABRIC_MIGRATE`` /
    ``FABRIC_MIGRATE_ACK`` are the two-phase ownership handoff when the
    ring changes (hold → transfer → remove-on-ack, drop on timeout).
"""

from __future__ import annotations

DISCOVER = "discover"
DISCOVER_ACK = "discover_ack"

QUERY = "query"
QUERY_REPLY = "query_reply"
QUERY_REFUSED = "query_refused"
CANCEL = "cancel"

CLAIM_ACCEPT = "claim_accept"
CLAIM_REJECT = "claim_reject"

REMOTE_OUT = "remote_out"
REMOTE_OUT_ACK = "remote_out_ack"
RELAY_OUT = "relay_out"

REL_ACK = "rel_ack"

SYNC_REQUEST = "sync_request"
SYNC_RESPONSE = "sync_response"

FABRIC_MAP = "fabric_map"
FABRIC_OUT = "fabric_out"
FABRIC_REPL = "fabric_repl"
FABRIC_INVAL = "fabric_inval"
FABRIC_MIGRATE = "fabric_migrate"
FABRIC_MIGRATE_ACK = "fabric_migrate_ack"

#: The fabric family, dispatched to the instance's FabricManager.
FABRIC_KINDS = frozenset({
    FABRIC_MAP, FABRIC_OUT, FABRIC_REPL, FABRIC_INVAL,
    FABRIC_MIGRATE, FABRIC_MIGRATE_ACK,
})

#: Every kind, for validation and stats bucketing.
ALL_KINDS = frozenset({
    DISCOVER, DISCOVER_ACK,
    QUERY, QUERY_REPLY, QUERY_REFUSED, CANCEL,
    CLAIM_ACCEPT, CLAIM_REJECT,
    REMOTE_OUT, REMOTE_OUT_ACK, RELAY_OUT,
    REL_ACK,
    SYNC_REQUEST, SYNC_RESPONSE,
}) | FABRIC_KINDS
