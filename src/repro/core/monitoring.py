"""Monitoring and adaptation: the section 5 challenges, implemented.

The paper closes with six challenges for pervasive infrastructure and
declares (section 6) that future Tiamat work "will focus on the monitoring
and adaptation as a result of changes to the run-time support".  This
module implements that programme:

* :class:`RtsMonitor` — *monitoring the run-time support* (5.2): per-
  neighbour visibility session tracking (current stability, historical
  availability, transition rate) and a stable/mobile classification, the
  information the social router and adaptation policies consume.
* :class:`AppMonitor` — *modelling application behaviour* (5.4): records
  "what operations the application performs, when and in what order ...
  and whether the previous operations succeeded or failed"; exposes the
  operation mix, per-pattern success rates, and observed match latencies.
* :class:`LeaseTuner` — *adapting to application behaviour* (5.5): a
  feedback controller that widens the default blocking-lease duration for
  patterns that keep expiring unsatisfied and narrows it for patterns
  that match quickly, within configured bounds.
* :class:`ConflictResolver` — *resolving conflict in adaptation* (5.6):
  watches storage pressure against application demand; under sustained
  pressure it makes the paper's "best guess" (revoke the oldest
  storage-bearing leases down to a low-water mark), then monitors whether
  refusals keep rising and backs off the water mark if the guess made
  things worse.
"""

from __future__ import annotations

from collections import Counter, deque
from typing import Optional

from repro.leasing import LeaseTerms
from repro.sim.kernel import Simulator
from repro.tuples import Pattern


class NeighborRecord:
    """Visibility history for one neighbour."""

    __slots__ = ("sessions", "visible_since", "total_visible", "transitions")

    def __init__(self) -> None:
        self.sessions = 0
        self.visible_since: Optional[float] = None
        self.total_visible = 0.0
        self.transitions = 0

    def availability(self, now: float, window: float) -> float:
        """Fraction of the last ``window`` seconds this neighbour was visible.

        Approximated as cumulative visible time over elapsed observation
        time, capped at 1.0 — adequate for ranking neighbours.
        """
        visible = self.total_visible
        if self.visible_since is not None:
            visible += now - self.visible_since
        if window <= 0:
            return 0.0
        return min(1.0, visible / window)


class RtsMonitor:
    """Monitors the run-time support: who is around, and how reliably.

    Attach to an instance's network; the monitor subscribes to the
    visibility graph and keeps per-neighbour histories.
    """

    def __init__(self, sim: Simulator, network, name: str,
                 stable_session: float = 60.0) -> None:
        self.sim = sim
        self.name = name
        self.stable_session = stable_session
        self.started_at = sim.now
        self.records: dict[str, NeighborRecord] = {}
        self._unsubscribe = network.visibility.on_edge_change(self._on_edge)

    def close(self) -> None:
        """Stop observing (histories are retained)."""
        self._unsubscribe()

    # ------------------------------------------------------------------
    def _on_edge(self, a: str, b: str, visible: bool) -> None:
        if self.name not in (a, b):
            return
        peer = b if a == self.name else a
        record = self.records.setdefault(peer, NeighborRecord())
        record.transitions += 1
        if visible:
            record.sessions += 1
            record.visible_since = self.sim.now
        elif record.visible_since is not None:
            record.total_visible += self.sim.now - record.visible_since
            record.visible_since = None

    # ------------------------------------------------------------------
    def stability_of(self, peer: str) -> float:
        """Seconds of the peer's current uninterrupted visibility (0 if away)."""
        record = self.records.get(peer)
        if record is None or record.visible_since is None:
            return 0.0
        return self.sim.now - record.visible_since

    def availability_of(self, peer: str) -> float:
        """Long-run fraction of time the peer has been visible."""
        record = self.records.get(peer)
        if record is None:
            return 0.0
        return record.availability(self.sim.now, self.sim.now - self.started_at)

    def classify(self, peer: str) -> str:
        """``"stable"`` / ``"mobile"`` / ``"unknown"`` (section 5.3).

        Stable nodes ("relatively fixed ... could be used as temporary
        data stores") are those whose current session exceeds the
        threshold; mobile ones come and go.
        """
        record = self.records.get(peer)
        if record is None or record.sessions == 0:
            return "unknown"
        if self.stability_of(peer) >= self.stable_session:
            return "stable"
        return "mobile"

    def stable_neighbors(self) -> list[str]:
        """Currently visible neighbours classified as stable, best first."""
        stable = [p for p in self.records if self.classify(p) == "stable"]
        stable.sort(key=self.stability_of, reverse=True)
        return stable


class OpRecord:
    """One observed operation, for the behaviour model."""

    __slots__ = ("kind", "pattern_key", "issued_at", "finished_at", "satisfied")

    def __init__(self, kind: str, pattern_key: tuple, issued_at: float) -> None:
        self.kind = kind
        self.pattern_key = pattern_key
        self.issued_at = issued_at
        self.finished_at: Optional[float] = None
        self.satisfied: Optional[bool] = None


def _pattern_key(pattern: Optional[Pattern]) -> tuple:
    """A hashable behaviour-model key: arity + spec reprs."""
    if pattern is None:
        return ("<none>",)
    return (pattern.arity,) + tuple(repr(s) for s in pattern.specs)


class AppMonitor:
    """Models application behaviour from the operations it performs.

    Call :meth:`observe` when an operation starts and :meth:`resolve` when
    it finishes; or use :meth:`attach` to hook a TiamatInstance so every
    operation is recorded automatically.
    """

    def __init__(self, sim: Simulator, history: int = 512) -> None:
        self.sim = sim
        self.history: deque = deque(maxlen=history)
        self.op_mix: Counter = Counter()
        self._attached: dict[int, tuple] = {}

    # ------------------------------------------------------------------
    def attach(self, instance) -> None:
        """Auto-record every operation the instance starts.

        Idempotent: attaching the same instance twice is a no-op (the
        wrapper is installed once, so operations are never double-counted)
        and reversible via :meth:`detach`, which restores the original
        ``_start_op``.
        """
        if id(instance) in self._attached:
            return
        # Remember whether _start_op was already overridden on the
        # *instance* (a stacked monitor) or still the plain class method,
        # so detach can restore exactly that state.
        had_override = "_start_op" in vars(instance)
        original = instance._start_op

        def wrapped(kind, pattern, requester, target=None):
            op = original(kind, pattern, requester, target=target)
            record = self.observe(kind.value, pattern)
            op.event.add_callback(
                lambda event: self.resolve(record, event.value is not None))
            return op

        self._attached[id(instance)] = (instance, original, wrapped,
                                        had_override)
        instance._start_op = wrapped

    def detach(self, instance) -> None:
        """Stop recording the instance's operations (history is retained).

        Restores the original ``_start_op`` if our wrapper is still the
        installed one; if another monitor wrapped on top of us since, the
        chain is left intact (detaching would silently disconnect them)
        and this monitor simply keeps recording until they unwind.
        Detaching an instance that was never attached is a no-op.
        """
        entry = self._attached.pop(id(instance), None)
        if entry is None:
            return
        _, original, wrapped, had_override = entry
        if instance._start_op is wrapped:
            if had_override:
                instance._start_op = original
            else:
                del instance._start_op  # back to the plain class method

    def observe(self, kind: str, pattern: Optional[Pattern]) -> OpRecord:
        """Record the start of an operation."""
        record = OpRecord(kind, _pattern_key(pattern), self.sim.now)
        self.history.append(record)
        self.op_mix[kind] += 1
        return record

    def resolve(self, record: OpRecord, satisfied: bool) -> None:
        """Record an operation's outcome."""
        record.finished_at = self.sim.now
        record.satisfied = satisfied

    # ------------------------------------------------------------------
    def success_rate(self, pattern: Optional[Pattern] = None) -> float:
        """Fraction of finished ops (optionally for one pattern) satisfied."""
        key = _pattern_key(pattern) if pattern is not None else None
        done = [r for r in self.history
                if r.satisfied is not None
                and (key is None or r.pattern_key == key)]
        if not done:
            return 0.0
        return sum(1 for r in done if r.satisfied) / len(done)

    def mean_match_latency(self, pattern: Optional[Pattern] = None) -> Optional[float]:
        """Mean time-to-satisfaction for satisfied ops (None if no data)."""
        key = _pattern_key(pattern) if pattern is not None else None
        latencies = [r.finished_at - r.issued_at for r in self.history
                     if r.satisfied and (key is None or r.pattern_key == key)]
        if not latencies:
            return None
        return sum(latencies) / len(latencies)

    def hot_patterns(self, top: int = 5) -> list[tuple]:
        """The most frequently queried pattern keys."""
        counts = Counter(r.pattern_key for r in self.history)
        return [key for key, _ in counts.most_common(top)]


class LeaseTuner:
    """Feedback controller over default blocking-lease durations (5.5).

    Per pattern: if recent blocking operations keep expiring unsatisfied,
    the suggested lease grows (the match takes longer to appear than the
    application allowed); if they match quickly, it shrinks toward the
    observed latency — "resource allocation strategies which better suit
    the application".
    """

    def __init__(self, monitor: AppMonitor, base_duration: float = 30.0,
                 min_duration: float = 5.0, max_duration: float = 300.0,
                 grow: float = 1.5, headroom: float = 3.0) -> None:
        self.monitor = monitor
        self.base_duration = base_duration
        self.min_duration = min_duration
        self.max_duration = max_duration
        self.grow = grow
        self.headroom = headroom
        self._suggestions: dict[tuple, float] = {}

    def suggest(self, pattern: Pattern) -> LeaseTerms:
        """The tuned lease request for a blocking op on ``pattern``."""
        key = _pattern_key(pattern)
        current = self._suggestions.get(key, self.base_duration)
        rate = self.monitor.success_rate(pattern)
        latency = self.monitor.mean_match_latency(pattern)
        finished = [r for r in self.monitor.history
                    if r.pattern_key == key and r.satisfied is not None]
        if finished:
            if rate < 0.5:
                current = min(self.max_duration, current * self.grow)
            elif latency is not None:
                target = max(self.min_duration, latency * self.headroom)
                # move a third of the way toward the observed need
                current = current + (target - current) / 3.0
        current = max(self.min_duration, min(self.max_duration, current))
        self._suggestions[key] = current
        return LeaseTerms(duration=current)


class ConflictResolver:
    """Best-guess conflict handling under storage pressure (5.6).

    Periodically samples the lease manager.  When storage pressure exceeds
    ``high_water`` the resolver revokes oldest storage-bearing leases down
    to ``low_water`` (the "best guess").  It then monitors the refusal
    rate; if refusals *rise* in the window after an intervention, the
    guess made things worse and the low-water mark is raised (less
    aggressive reclamation) — "allow it to monitor the situation so that
    the decision can be reversed if things get worse".
    """

    def __init__(self, sim: Simulator, lease_manager, period: float = 5.0,
                 high_water: float = 0.9, low_water: float = 0.6) -> None:
        self.sim = sim
        self.leases = lease_manager
        self.period = period
        self.high_water = high_water
        self.low_water = low_water
        self.interventions = 0
        self.reversals = 0
        self._refusals_at_intervention: Optional[int] = None
        self._running = False

    def start(self) -> None:
        """Begin periodic sampling."""
        self._running = True
        self.sim.schedule(self.period, self._tick)

    def stop(self) -> None:
        """Stop sampling."""
        self._running = False

    def _tick(self) -> None:
        if not self._running:
            return
        usage = self.leases.usage()
        if self._refusals_at_intervention is not None:
            # Evaluate the previous best guess.
            if self.leases.refusals > self._refusals_at_intervention:
                self.reversals += 1
                self.low_water = min(self.high_water,
                                     self.low_water + 0.1)
            self._refusals_at_intervention = None
        if usage.storage_pressure >= self.high_water:
            capacity = self.leases.storage_capacity or 0
            target = int(capacity * self.low_water)
            self.leases.revoke_storage_pressure(target)
            self.interventions += 1
            self._refusals_at_intervention = self.leases.refusals
        self.sim.schedule(self.period, self._tick)
