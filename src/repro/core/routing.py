"""Reply-to-origin ``out`` and tuple routing policies.

Section 2.4 defines a third form of ``out``/``eval`` that targets the
instance a previously retrieved tuple came from.  "If the destination is
not available, then a policy, either at the application or system level,
must be established as to whether there are attempts to route the tuple,
whether it is placed in the local space, or whether the operation is
abandoned altogether."  :class:`UnavailablePolicy` enumerates exactly those
three choices.

Routing itself needs a relay-selection strategy.  Two are provided:

* :class:`RandomRelayRouter` — any visible neighbour, uniformly.
* :class:`SocialRouter` — the section 6 future-work extension: "exploit the
  relatively fixed and well connected portions of the network as a backbone
  for more efficient communications".  Relays are scored by connectivity
  (current degree) plus stability (how long they have been continuously
  visible), and the best-scoring neighbour carries the tuple.

The T7 bench ablates the two routers on a mixed fixed/mobile topology.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.sim.rng import RngStream


class UnavailablePolicy(enum.Enum):
    """What to do when a reply-bound tuple's destination is not visible."""

    LOCAL = "local"        # fall back to the local space
    ROUTE = "route"        # hand the tuple to a relay
    ABANDON = "abandon"    # give up; the operation fails


class Router:
    """Protocol: pick a relay for a tuple bound for ``destination``."""

    def choose_relay(self, instance, destination: str,
                     exclude: set[str]) -> Optional[str]:  # pragma: no cover
        """A visible neighbour to carry the tuple, or None if there is none."""
        raise NotImplementedError


class RandomRelayRouter(Router):
    """Uniformly random choice among visible neighbours."""

    def __init__(self, rng: RngStream) -> None:
        self.rng = rng

    def choose_relay(self, instance, destination: str,
                     exclude: set[str]) -> Optional[str]:
        candidates = [n for n in instance.iface.neighbors()
                      if n != destination and n not in exclude]
        if not candidates:
            return None
        return self.rng.choice(candidates)


class SocialRouter(Router):
    """Prefer well-connected, long-visible neighbours (the backbone).

    ``stability_weight`` trades off degree against continuous-visibility
    time; ``stability_cap`` bounds the stability contribution so ancient
    links cannot dominate a much better-connected newcomer.
    """

    def __init__(self, degree_weight: float = 1.0, stability_weight: float = 0.1,
                 stability_cap: float = 300.0) -> None:
        self.degree_weight = degree_weight
        self.stability_weight = stability_weight
        self.stability_cap = stability_cap

    def choose_relay(self, instance, destination: str,
                     exclude: set[str]) -> Optional[str]:
        graph = instance.network.visibility
        now = instance.sim.now
        best, best_score = None, float("-inf")
        for neighbor in instance.iface.neighbors():
            if neighbor == destination or neighbor in exclude:
                continue
            degree = len(graph.neighbors(neighbor))
            seen_since = instance.neighbor_since.get(neighbor, now)
            stability = min(now - seen_since, self.stability_cap)
            score = self.degree_weight * degree + self.stability_weight * stability
            if score > best_score:
                best, best_score = neighbor, score
        return best
