"""Configuration for a Tiamat instance.

The model leaves several behaviours open to the implementation; the config
object pins each one explicitly so experiments can ablate them:

``propagate_mode``
    ``"start"`` reproduces the paper's prototype ("operations are only
    propagated to instances which are visible at the beginning of the
    operation"); ``"continuous"`` implements the full model (instances
    becoming visible during the operation's lease are contacted too —
    the paper's stated area of future work).

``comms_strategy``
    ``"mru"`` is the prototype's cached visibility list (section 3.1.3);
    ``"multicast"`` performs a discovery multicast for every operation —
    the naive alternative the paper argues against, kept for the T1
    comparison bench.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.leasing import LeaseTerms, OperationKind


def _default_lease_terms() -> dict:
    return {
        OperationKind.OUT: LeaseTerms(duration=120.0),
        OperationKind.EVAL: LeaseTerms(duration=120.0),
        OperationKind.IN: LeaseTerms(duration=30.0, max_remotes=32),
        OperationKind.RD: LeaseTerms(duration=30.0, max_remotes=32),
        OperationKind.INP: LeaseTerms(duration=2.0, max_remotes=8),
        OperationKind.RDP: LeaseTerms(duration=2.0, max_remotes=8),
    }


@dataclass
class TiamatConfig:
    """Tunables for one Tiamat instance.

    Attributes
    ----------
    propagate_mode:
        ``"start"`` or ``"continuous"`` (see module docstring).
    comms_strategy:
        ``"mru"`` or ``"multicast"`` (see module docstring).
    peer_timeout:
        Seconds to wait for any response from a known-list peer before
        declaring it unreachable and removing it from the list.
    discover_window:
        Seconds to collect ``DISCOVER_ACK`` responses after a multicast.
    claim_timeout:
        Seconds a serving instance holds an offered tuple awaiting
        CLAIM_ACCEPT/REJECT before putting it back.
    serve_max_duration:
        Cap on the lease a serving instance grants itself for working on a
        remote instance's operation.
    default_lease_terms:
        Per-operation default lease requests, used when the application
        does not pass its own lease requester.
    persistent_space:
        Advertised in the space-info tuple (section 2.4): whether this
        instance's local space claims a persistence mechanism.
    relay_ttl:
        Hop budget for routed (``RELAY_OUT``) tuples.
    reliability_enabled:
        Whether the critical protocol frames (claim resolution, offers,
        remote deposits) travel over the ack/retransmit/dedup sublayer
        (:mod:`repro.core.reliability`).  Off reproduces the paper's pure
        best-effort prototype (the T10 ablation).
    retry_initial:
        First retransmission interval for an unacked reliable frame.
    retry_backoff:
        Multiplier applied to the interval after each attempt.
    retry_max_interval:
        Cap on the retransmission interval.
    retry_jitter:
        Multiplicative jitter (0..1) on each retransmission delay, so
        synchronized losers do not retry in lockstep.
    dedup_window:
        How many recently-seen sequence numbers the receive-side dedup
        window keeps per (peer, epoch).
    ack_piggyback:
        Whether reliable-delivery acknowledgements ride outgoing data
        frames (``"racks"`` payload key) instead of each costing a
        dedicated ``REL_ACK`` frame.  Queued acks that find no data frame
        to ride within the current simulation tick are flushed as one
        consolidated ``REL_ACK``.  Off (the default) reproduces the
        original one-ack-frame-per-reliable-frame behaviour bit for bit.
    wire_codec:
        Which wire codec prices (and conceptually carries) frames sent by
        this instance's network: ``"json"`` (tag-first JSON, the default)
        or ``"binary"`` (compact length-prefixed binary).  Consumed by
        harnesses that build the :class:`~repro.net.network.Network`;
        kept here so experiment configs can ablate the codec alongside
        protocol behaviour.
    """

    propagate_mode: str = "start"
    comms_strategy: str = "mru"
    peer_timeout: float = 0.5
    discover_window: float = 0.1
    claim_timeout: float = 2.0
    serve_max_duration: float = 60.0
    default_lease_terms: dict = field(default_factory=_default_lease_terms)
    persistent_space: bool = False
    relay_ttl: int = 3
    reliability_enabled: bool = True
    retry_initial: float = 0.12
    retry_backoff: float = 2.0
    retry_max_interval: float = 1.0
    retry_jitter: float = 0.3
    dedup_window: int = 256
    ack_piggyback: bool = False
    wire_codec: str = "json"

    def __post_init__(self) -> None:
        if self.propagate_mode not in ("start", "continuous"):
            raise ValueError(f"bad propagate_mode {self.propagate_mode!r}")
        if self.comms_strategy not in ("mru", "multicast"):
            raise ValueError(f"bad comms_strategy {self.comms_strategy!r}")
        if self.retry_initial <= 0 or self.retry_backoff < 1.0:
            raise ValueError("retry_initial must be > 0 and retry_backoff >= 1")
        if self.dedup_window < 1:
            raise ValueError("dedup_window must be >= 1")
        if self.wire_codec not in ("json", "binary"):
            raise ValueError(f"bad wire_codec {self.wire_codec!r}")

    def default_terms(self, kind: OperationKind) -> LeaseTerms:
        """The default lease request for an operation kind."""
        return self.default_lease_terms[kind]
