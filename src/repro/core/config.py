"""Configuration for a Tiamat instance.

The model leaves several behaviours open to the implementation; the config
object pins each one explicitly so experiments can ablate them:

``propagate_mode``
    ``"start"`` reproduces the paper's prototype ("operations are only
    propagated to instances which are visible at the beginning of the
    operation"); ``"continuous"`` implements the full model (instances
    becoming visible during the operation's lease are contacted too —
    the paper's stated area of future work).

``comms_strategy``
    ``"mru"`` is the prototype's cached visibility list (section 3.1.3);
    ``"multicast"`` performs a discovery multicast for every operation —
    the naive alternative the paper argues against, kept for the T1
    comparison bench.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.leasing import LeaseTerms, OperationKind

if TYPE_CHECKING:  # pragma: no cover - type hint only, no runtime import
    from repro.fabric.config import FabricConfig


def _default_lease_terms() -> dict:
    return {
        OperationKind.OUT: LeaseTerms(duration=120.0),
        OperationKind.EVAL: LeaseTerms(duration=120.0),
        OperationKind.IN: LeaseTerms(duration=30.0, max_remotes=32),
        OperationKind.RD: LeaseTerms(duration=30.0, max_remotes=32),
        OperationKind.INP: LeaseTerms(duration=2.0, max_remotes=8),
        OperationKind.RDP: LeaseTerms(duration=2.0, max_remotes=8),
    }


@dataclass
class TiamatConfig:
    """Tunables for one Tiamat instance.

    Attributes
    ----------
    propagate_mode:
        ``"start"`` or ``"continuous"`` (see module docstring).
    comms_strategy:
        ``"mru"`` or ``"multicast"`` (see module docstring).
    peer_timeout:
        Seconds to wait for any response from a known-list peer before
        declaring it unreachable and removing it from the list.
    discover_window:
        Seconds to collect ``DISCOVER_ACK`` responses after a multicast.
    claim_timeout:
        Seconds a serving instance holds an offered tuple awaiting
        CLAIM_ACCEPT/REJECT before putting it back.
    serve_max_duration:
        Cap on the lease a serving instance grants itself for working on a
        remote instance's operation.
    default_lease_terms:
        Per-operation default lease requests, used when the application
        does not pass its own lease requester.
    persistent_space:
        Advertised in the space-info tuple (section 2.4): whether this
        instance's local space claims a persistence mechanism.
    relay_ttl:
        Hop budget for routed (``RELAY_OUT``) tuples.
    reliability_enabled:
        Whether the critical protocol frames (claim resolution, offers,
        remote deposits) travel over the ack/retransmit/dedup sublayer
        (:mod:`repro.core.reliability`).  Off reproduces the paper's pure
        best-effort prototype (the T10 ablation).
    retry_initial:
        First retransmission interval for an unacked reliable frame.
    retry_backoff:
        Multiplier applied to the interval after each attempt.
    retry_max_interval:
        Cap on the retransmission interval.
    retry_jitter:
        Multiplicative jitter (0..1) on each retransmission delay, so
        synchronized losers do not retry in lockstep.
    dedup_window:
        How many recently-seen sequence numbers the receive-side dedup
        window keeps per (peer, epoch).
    ack_piggyback:
        Whether reliable-delivery acknowledgements ride outgoing data
        frames (``"racks"`` payload key) instead of each costing a
        dedicated ``REL_ACK`` frame.  Queued acks that find no data frame
        to ride within the current simulation tick are flushed as one
        consolidated ``REL_ACK``.  Off (the default) reproduces the
        original one-ack-frame-per-reliable-frame behaviour bit for bit.
    wire_codec:
        Which wire codec prices (and conceptually carries) frames sent by
        this instance's network: ``"json"`` (tag-first JSON, the default)
        or ``"binary"`` (compact length-prefixed binary).  Consumed by
        harnesses that build the :class:`~repro.net.network.Network`;
        kept here so experiment configs can ablate the codec alongside
        protocol behaviour.
    serve_cost:
        Virtual worker-seconds one inbound QUERY costs to dispatch.  ``0``
        (the default) keeps the original inline serving path — a QUERY is
        handled the instant it arrives.  ``> 0`` routes arriving QUERYs
        through the bounded inbound serving queue drained by
        ``serve_workers`` dispatch workers, which is where overload (and
        admission control) becomes observable.
    serve_workers:
        Dispatch workers draining the inbound serving queue (only
        meaningful with ``serve_cost > 0``).
    admission_enabled:
        Whether the :class:`~repro.core.admission.AdmissionController` is
        consulted at QUERY arrival, before any lease or thread
        allocation.  Off (the default) reproduces the uncontrolled
        baseline bit for bit: refusals only happen once the lease manager
        or thread pool says no.
    admission_queue_bound:
        Maximum inbound serving-queue depth (or, with inline serving,
        maximum concurrent servings) before arriving QUERYs are shed with
        ``reason="queue_full"``.
    admission_price_curve:
        Multiplier on the estimated queue delay when pricing work against
        its own deadline; ``> 1`` sheds earlier (conservative), ``< 1``
        later (optimistic).
    admission_fairness:
        Whether per-peer fair-share token buckets (denominated in
        worker-seconds, per section 2.5's arbitrary lease resources) gate
        admission so one hot origin cannot starve the rest.
    admission_burst:
        Fair-share bucket capacity, in worker-seconds: how much serving
        capacity one origin may consume in a burst before its refill rate
        throttles it.
    admission_retry_floor:
        Minimum ``retry_after`` hint attached to a shed refusal.
    backoff_on_refusal:
        Whether blocking operations whose QUERY was refused *with a
        ``retry_after`` hint* re-contact the refusing peer after a capped
        exponential backoff (+ jitter, honouring the hint) instead of
        writing the peer off.  Only admission-enabled servers send hints,
        so this is inert against uncontrolled peers.
    telemetry_enabled:
        Whether this instance periodically ``out``s a leased
        ``("_telemetry", node, epoch, payload)`` health row into its own
        space (see :mod:`repro.obs.telemetry` and ``repro top``).  Off by
        default: the publisher schedules events and negotiates leases, so
        it perturbs seeded schedules.
    telemetry_period:
        Seconds between telemetry beats.
    telemetry_lease:
        Requested lease duration for each health row; a dead node's rows
        expire (and are reclaimed by the space) this long after its last
        beat.
    fabric:
        A :class:`~repro.fabric.config.FabricConfig` to run this instance
        inside the sharded + replicated tuple-space fabric (consistent-hash
        routing, k-way replication, lease-governed shard handoff — see
        ``docs/PROTOCOL.md`` section 11).  ``None`` (the default) keeps the
        union-scan logical space and is bit-identical to the pre-fabric
        behaviour: no fabric code is imported, no fabric frames or payload
        keys appear on the wire.
    """

    propagate_mode: str = "start"
    comms_strategy: str = "mru"
    peer_timeout: float = 0.5
    discover_window: float = 0.1
    claim_timeout: float = 2.0
    serve_max_duration: float = 60.0
    default_lease_terms: dict = field(default_factory=_default_lease_terms)
    persistent_space: bool = False
    relay_ttl: int = 3
    reliability_enabled: bool = True
    retry_initial: float = 0.12
    retry_backoff: float = 2.0
    retry_max_interval: float = 1.0
    retry_jitter: float = 0.3
    dedup_window: int = 256
    ack_piggyback: bool = False
    wire_codec: str = "json"
    serve_cost: float = 0.0
    serve_workers: int = 4
    admission_enabled: bool = False
    admission_queue_bound: int = 64
    admission_price_curve: float = 1.0
    admission_fairness: bool = True
    admission_burst: float = 0.25
    admission_retry_floor: float = 0.05
    backoff_on_refusal: bool = True
    telemetry_enabled: bool = False
    telemetry_period: float = 1.0
    telemetry_lease: float = 2.5
    fabric: Optional["FabricConfig"] = None

    def __post_init__(self) -> None:
        if self.propagate_mode not in ("start", "continuous"):
            raise ValueError(f"bad propagate_mode {self.propagate_mode!r}")
        if self.comms_strategy not in ("mru", "multicast"):
            raise ValueError(f"bad comms_strategy {self.comms_strategy!r}")
        if self.retry_initial <= 0 or self.retry_backoff < 1.0:
            raise ValueError("retry_initial must be > 0 and retry_backoff >= 1")
        if self.dedup_window < 1:
            raise ValueError("dedup_window must be >= 1")
        if self.wire_codec not in ("json", "binary"):
            raise ValueError(f"bad wire_codec {self.wire_codec!r}")
        if self.serve_cost < 0:
            raise ValueError("serve_cost must be >= 0")
        if self.serve_workers < 1:
            raise ValueError("serve_workers must be >= 1")
        if self.admission_queue_bound < 1:
            raise ValueError("admission_queue_bound must be >= 1")
        if self.admission_price_curve <= 0:
            raise ValueError("admission_price_curve must be > 0")
        if self.telemetry_period <= 0:
            raise ValueError("telemetry_period must be > 0")
        if self.telemetry_lease <= 0:
            raise ValueError("telemetry_lease must be > 0")
        if self.fabric is not None and not hasattr(self.fabric, "replication"):
            raise ValueError("fabric must be a FabricConfig (or None)")

    def default_terms(self, kind: OperationKind) -> LeaseTerms:
        """The default lease request for an operation kind."""
        return self.default_lease_terms[kind]
