"""Space handles and space-info tuples (section 2.4).

"Each tuple space in Tiamat contains a special tuple.  This tuple contains
a handle on the space as well as some information about that space, e.g.,
whether the local space provides a persistence mechanism or not.
Applications can read these tuples and use the handles to perform
operations on specific remote spaces."

The info tuple's layout is ``(SPACE_INFO_TAG, <instance name>,
<persistent: bool>)``.  A :class:`SpaceHandle` is the decoded, typed view
of that tuple; it is accepted by the ``*_at`` operation variants on
:class:`~repro.core.instance.TiamatInstance`.
"""

from __future__ import annotations

from repro.errors import TupleError
from repro.tuples import Formal, Pattern, Tuple

#: First field of every space-info tuple.
SPACE_INFO_TAG = "__space_info__"

#: Pattern matching any space-info tuple in a logical space.
SPACE_INFO_PATTERN = Pattern(SPACE_INFO_TAG, Formal(str), Formal(bool))


class SpaceHandle:
    """A handle on a (possibly remote) Tiamat instance's local space."""

    __slots__ = ("instance_name", "persistent")

    def __init__(self, instance_name: str, persistent: bool = False) -> None:
        self.instance_name = instance_name
        self.persistent = persistent

    @classmethod
    def from_tuple(cls, tup: Tuple) -> "SpaceHandle":
        """Decode a handle from a space-info tuple."""
        if (tup.arity != 3 or tup[0] != SPACE_INFO_TAG
                or not isinstance(tup[1], str) or not isinstance(tup[2], bool)):
            raise TupleError(f"{tup!r} is not a space-info tuple")
        return cls(tup[1], tup[2])

    def to_tuple(self) -> Tuple:
        """Encode this handle as the space-info tuple."""
        return Tuple(SPACE_INFO_TAG, self.instance_name, self.persistent)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, SpaceHandle)
                and other.instance_name == self.instance_name)

    def __hash__(self) -> int:
        return hash(("SpaceHandle", self.instance_name))

    def __repr__(self) -> str:
        flag = "persistent" if self.persistent else "volatile"
        return f"SpaceHandle({self.instance_name!r}, {flag})"
