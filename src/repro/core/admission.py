"""Admission control: lease-priced overload shedding at QUERY arrival.

The paper makes the lease manager "the first point of contact for *any*
operation" and lets leases be denominated in arbitrary resources (section
2.5).  Until now an overloaded :class:`~repro.core.serving.QueryServer`
only refused once the worker pool was already exhausted — after a lease
negotiation and a thread allocation had been spent on work that was about
to be turned away — and the refusal itself was a bare ``found: False``
with no reason and no retry guidance.

:class:`AdmissionController` moves that decision to the front door.  It is
consulted when a QUERY *arrives*, before any lease or thread is allocated,
and prices the incoming work from live load signals:

* **worker-pool utilisation** — the lease manager's thread factory;
* **bounded inbound serving-queue depth and estimated drain delay** — how
  long a newly admitted query would sit before a worker picks it up;
* **active servings** — remote operations already being worked on.

Work whose estimated queue delay exceeds its own declared deadline (the
remaining lease time the origin put in the QUERY frame) is shed
immediately: admitting it would burn a worker on an answer nobody is
waiting for.  A per-peer **fair-share token bucket**, denominated in
worker-seconds (the same resource the serving lease spends), prevents one
hot origin from starving the rest.

Every shed is a structured ``QUERY_REFUSED`` carrying ``reason`` and a
``retry_after`` hint; origins honour the hint with capped exponential
backoff + jitter (see :meth:`repro.core.ops.Operation.deliver_reply`)
instead of blind re-issue.  All of this is **default-off**: with
``TiamatConfig.admission_enabled`` false the server behaves bit-for-bit
like the uncontrolled baseline.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional

from repro.check import probes

__all__ = [
    "ALL_REFUSAL_REASONS",
    "AdmissionController",
    "AdmissionDecision",
    "FairShare",
    "REFUSE_DEADLINE",
    "REFUSE_FAIR_SHARE",
    "REFUSE_QUEUE_FULL",
    "REFUSE_SERVING_LEASE",
    "REFUSE_THREADS",
    "Refusal",
    "parse_refusal",
]

# ----------------------------------------------------------------------
# Structured refusal reasons (the QUERY_REFUSED ``reason`` vocabulary)
# ----------------------------------------------------------------------

#: The serving instance's lease manager refused the serving lease.
REFUSE_SERVING_LEASE = "serving_lease"
#: The worker-thread pool is exhausted.
REFUSE_THREADS = "threads_exhausted"
#: The bounded inbound serving queue is full.
REFUSE_QUEUE_FULL = "queue_full"
#: The priced queue delay exceeds the operation's own deadline.
REFUSE_DEADLINE = "deadline_unmeetable"
#: The origin is over its fair share of serving capacity.
REFUSE_FAIR_SHARE = "fair_share"

#: Every refusal reason a conforming emitter may put on the wire.
ALL_REFUSAL_REASONS = frozenset({
    REFUSE_SERVING_LEASE,
    REFUSE_THREADS,
    REFUSE_QUEUE_FULL,
    REFUSE_DEADLINE,
    REFUSE_FAIR_SHARE,
})


class Refusal:
    """One parsed ``QUERY_REFUSED``: who said no, why, and when to retry.

    Surfaced on the origin side as :attr:`repro.core.ops.Operation.refusals`
    so applications can distinguish "the space had nothing" from "the peer
    was overloaded, come back in 0.3 s".
    """

    __slots__ = ("peer", "reason", "retry_after")

    def __init__(self, peer: str, reason: str,
                 retry_after: Optional[float] = None) -> None:
        self.peer = peer
        self.reason = reason
        self.retry_after = retry_after

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Refusal)
                and (other.peer, other.reason, other.retry_after)
                == (self.peer, self.reason, self.retry_after))

    def __repr__(self) -> str:
        hint = "" if self.retry_after is None else f" retry_after={self.retry_after:.3f}"
        return f"<Refusal {self.peer} {self.reason}{hint}>"


def parse_refusal(peer: str, payload: dict) -> Refusal:
    """Parse a ``QUERY_REFUSED`` payload into a :class:`Refusal`.

    Pre-redesign emitters sent no ``reason``; those parse as
    ``"serving_lease"`` (the only refusal the legacy shape could mean).
    """
    reason = payload.get("reason", REFUSE_SERVING_LEASE)
    retry_after = payload.get("retry_after")
    if retry_after is not None:
        retry_after = float(retry_after)
    return Refusal(peer, str(reason), retry_after)


class AdmissionDecision:
    """The controller's verdict on one arriving QUERY."""

    __slots__ = ("admitted", "reason", "retry_after", "price")

    def __init__(self, admitted: bool, reason: Optional[str] = None,
                 retry_after: Optional[float] = None,
                 price: float = 0.0) -> None:
        self.admitted = admitted
        self.reason = reason
        self.retry_after = retry_after
        self.price = price

    @classmethod
    def admit(cls, price: float = 0.0) -> "AdmissionDecision":
        """An admit verdict (``price`` is the worker-seconds charged)."""
        return cls(True, price=price)

    @classmethod
    def shed(cls, reason: str,
             retry_after: Optional[float] = None) -> "AdmissionDecision":
        """A shed verdict with its structured reason and retry hint."""
        return cls(False, reason=reason, retry_after=retry_after)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.admitted:
            return f"<AdmissionDecision admit price={self.price:.3f}>"
        return f"<AdmissionDecision shed {self.reason} retry={self.retry_after}>"


#: Relative price of serving each operation kind, in units of one probe.
#: Blocking operations hold a watch, a worker thread, and possibly a held
#: tuple through a claim round, so they are priced above probes.
PRICE_WEIGHTS = {
    "rdp": 1.0,
    "inp": 1.25,
    "rd": 2.0,
    "in": 2.5,
}


class FairShare:
    """Per-peer token buckets denominated in worker-seconds.

    Each origin gets an equal share of the serving capacity rate
    (``capacity_rate`` worker-seconds per second, split across the origins
    seen within ``window`` seconds).  Buckets refill lazily from the
    injected clock, so refill is deterministic under the simulation clock
    and cheap under the wall clock.
    """

    __slots__ = ("clock", "capacity_rate", "burst", "window", "_buckets")

    def __init__(self, clock: Callable[[], float], capacity_rate: float,
                 burst: float, window: float = 5.0) -> None:
        self.clock = clock
        self.capacity_rate = capacity_rate
        self.burst = burst
        self.window = window
        # peer -> [tokens, last_refill_time]
        self._buckets: dict[str, list[float]] = {}

    def _prune(self, now: float, keep: str) -> None:
        stale = [peer for peer, (_, last) in self._buckets.items()
                 if peer != keep and now - last > self.window]
        for peer in stale:
            del self._buckets[peer]

    def rate_per_peer(self) -> float:
        """The refill rate each active origin currently enjoys."""
        return self.capacity_rate / max(1, len(self._buckets))

    def spend(self, peer: str, cost: float) -> Optional[float]:
        """Charge ``cost`` worker-seconds to ``peer``'s bucket.

        Returns ``None`` when the bucket affords it, else the time (in
        seconds) until the bucket will have refilled enough — the
        ``retry_after`` hint for a fair-share shed.
        """
        now = self.clock()
        bucket = self._buckets.get(peer)
        if bucket is None:
            bucket = self._buckets[peer] = [self.burst, now]
        self._prune(now, keep=peer)
        rate = self.rate_per_peer()
        tokens, last = bucket
        tokens = min(self.burst, tokens + (now - last) * rate)
        bucket[1] = now
        if tokens >= cost:
            bucket[0] = tokens - cost
            return None
        bucket[0] = tokens
        if rate <= 0:
            return None  # a zero-rate share cannot meaningfully throttle
        return (cost - tokens) / rate

    def debts(self) -> Iterator[tuple[str, float]]:
        """Yield ``(peer, debt)`` pairs: how far below full each bucket is.

        Exposed as the ``admission_peer_debt`` gauge family — a hot origin
        shows a persistently high debt while well-behaved peers hover near
        zero.
        """
        for peer, (tokens, _) in sorted(self._buckets.items()):
            yield peer, max(0.0, self.burst - tokens)


class AdmissionController:
    """Prices arriving QUERYs against live load and sheds the unservable.

    The controller is pure decision logic: the :class:`QueryServer` owns
    the queue and the workers and feeds their live state in through
    :meth:`consider`.  Clock and signals are injected so the same class
    serves the simulated stack (virtual clock) and the threaded runtime
    (wall clock).
    """

    def __init__(self, *, clock: Callable[[], float],
                 queue_bound: int = 64,
                 price_curve: float = 1.0,
                 fairness: bool = True,
                 capacity_rate: float = 0.0,
                 unit_cost: float = 0.0,
                 burst: float = 0.25,
                 retry_floor: float = 0.05) -> None:
        if queue_bound < 1:
            raise ValueError("queue_bound must be >= 1")
        if price_curve <= 0:
            raise ValueError("price_curve must be > 0")
        self.clock = clock
        self.queue_bound = queue_bound
        self.price_curve = price_curve
        self.unit_cost = unit_cost
        self.retry_floor = retry_floor
        self.fair_share: Optional[FairShare] = None
        if fairness and capacity_rate > 0 and unit_cost > 0:
            self.fair_share = FairShare(clock, capacity_rate, burst)
        # statistics (read by repro.obs collect-time callbacks)
        self.admitted = 0
        self.shed_by_reason: dict[str, int] = {}
        #: Observer hook for the estimated-queue-delay histogram.
        self.delay_observer: Optional[Callable[[float], None]] = None

    # ------------------------------------------------------------------
    def consider(self, origin: str, kind: str, *,
                 queue_depth: int,
                 drain_rate: float,
                 utilisation: float,
                 active_servings: int,
                 deadline: Optional[float] = None) -> AdmissionDecision:
        """Price one arriving QUERY and decide admit vs shed.

        Parameters are the live load signals at arrival time:
        ``queue_depth`` (inbound serving queue), ``drain_rate`` (queries
        per second the workers clear, 0 when serving is inline),
        ``utilisation`` (the lease manager's worker-pool utilisation),
        ``active_servings``, and the operation's own declared ``deadline``
        (remaining origin-lease seconds from the QUERY frame).
        """
        # Estimated delay a newly admitted query would face in the queue.
        est_delay = 0.0
        if drain_rate > 0:
            est_delay = (queue_depth + 1) / drain_rate
        if self.delay_observer is not None:
            self.delay_observer(est_delay)

        # 1. Worker pool already exhausted: refuse before spending a lease
        #    negotiation on it (the pre-admission design paid that cost).
        if utilisation >= 1.0:
            return self._shed(REFUSE_THREADS,
                              max(self.retry_floor, est_delay))

        # 2. Bounded inbound queue: cheap depth check.  ``active_servings``
        #    stands in for depth when serving is inline (drain_rate == 0).
        depth_signal = queue_depth if drain_rate > 0 else active_servings
        if depth_signal >= self.queue_bound:
            return self._shed(REFUSE_QUEUE_FULL,
                              max(self.retry_floor, est_delay))

        # 3. Price the work against its own deadline: the priced delay is
        #    the estimated queue delay scaled by the price curve and the
        #    operation kind's weight.  Admitting work that will expire in
        #    the queue burns a worker on an answer nobody is waiting for.
        weight = PRICE_WEIGHTS.get(kind, 1.0)
        priced_delay = est_delay * self.price_curve * weight
        if deadline is not None and drain_rate > 0 and priced_delay >= deadline:
            retry = max(self.retry_floor, priced_delay - deadline + 1.0 / drain_rate)
            return self._shed(REFUSE_DEADLINE, retry)

        # 4. Fair share: charge the origin's bucket the actual
        #    worker-seconds this query will consume.
        cost = self.unit_cost
        if self.fair_share is not None and cost > 0:
            wait = self.fair_share.spend(origin, cost)
            if wait is not None:
                return self._shed(REFUSE_FAIR_SHARE,
                                  max(self.retry_floor, wait))

        self.admitted += 1
        return AdmissionDecision.admit(price=cost * weight)

    def _shed(self, reason: str, retry_after: float) -> AdmissionDecision:
        self.shed_by_reason[reason] = self.shed_by_reason.get(reason, 0) + 1
        if probes.SINK is not None:
            probes.emit("admission.shed", reason=reason,
                        retry_after=retry_after)
        return AdmissionDecision.shed(reason, retry_after)

    # ------------------------------------------------------------------
    @property
    def shed_total(self) -> int:
        """Total queries shed, over all reasons."""
        return sum(self.shed_by_reason.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<AdmissionController admitted={self.admitted} "
                f"shed={self.shed_total} bound={self.queue_bound}>")
