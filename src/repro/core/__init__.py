"""Tiamat proper: opportunistic logical tuple spaces with leased operations.

This package is the paper's primary contribution.  Usage sketch::

    from repro.core import TiamatInstance, TiamatConfig
    from repro.net import Network
    from repro.sim import Simulator
    from repro.tuples import Pattern, Tuple

    sim = Simulator(seed=1)
    net = Network(sim)
    a = TiamatInstance(sim, net, "a")
    b = TiamatInstance(sim, net, "b")
    net.visibility.set_visible("a", "b")

    a.out(Tuple("greeting", "hello"))

    def reader(sim):
        op = b.rd(Pattern("greeting", str))
        tup = yield op.event           # -> Tuple('greeting', 'hello')
        print(tup, "from", op.source)  # source == 'a'

    sim.spawn(reader(sim))
    sim.run()

See :class:`~repro.core.instance.TiamatInstance` for the full API and
:class:`~repro.core.config.TiamatConfig` for the ablation switches
(propagation mode, comms strategy).
"""

from repro.core.admission import (
    ALL_REFUSAL_REASONS,
    AdmissionController,
    AdmissionDecision,
    FairShare,
    Refusal,
    parse_refusal,
)
from repro.core.config import TiamatConfig
from repro.core.comms import CommsManager
from repro.core.evaltask import EvalTask
from repro.core.handles import SPACE_INFO_PATTERN, SPACE_INFO_TAG, SpaceHandle
from repro.core.instance import TiamatInstance
from repro.core.monitoring import (
    AppMonitor,
    ConflictResolver,
    LeaseTuner,
    RtsMonitor,
)
from repro.core.ops import Operation
from repro.core.reliability import ReliableChannel
from repro.core.routing import (
    RandomRelayRouter,
    Router,
    SocialRouter,
    UnavailablePolicy,
)
from repro.core.serving import QueryServer

__all__ = [
    "ALL_REFUSAL_REASONS",
    "AdmissionController",
    "AdmissionDecision",
    "AppMonitor",
    "CommsManager",
    "ConflictResolver",
    "EvalTask",
    "FairShare",
    "LeaseTuner",
    "Operation",
    "QueryServer",
    "RandomRelayRouter",
    "Refusal",
    "ReliableChannel",
    "Router",
    "RtsMonitor",
    "SPACE_INFO_PATTERN",
    "SPACE_INFO_TAG",
    "SocialRouter",
    "SpaceHandle",
    "TiamatConfig",
    "TiamatInstance",
    "UnavailablePolicy",
    "parse_refusal",
]
