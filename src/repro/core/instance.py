"""The Tiamat instance: Figure 2 wired together.

An instance owns the three components of the paper's architecture —

* the **lease manager**, the first point of contact for every operation
  (local or arriving from the network); a refused lease aborts the
  operation before any other work happens;
* the **local tuple space**, where all this instance's tuples live; and
* the **communications manager**, which discovers peers, maintains the
  known-peer list, propagates operations, and fields remote requests —

and exposes the application API: the six Linda operations over the
opportunistic logical tuple space, the ``*_at`` handle-directed variants,
the reply-to-origin ``out_back``, and ``eval`` active tuples.

All remote interaction is asynchronous: operations return
:class:`~repro.core.ops.Operation` handles whose ``event`` a simulation
process can ``yield``.
"""

from __future__ import annotations

import itertools
from typing import Callable, Optional

from repro._compat import absorb_positional
from repro.core import protocol
from repro.core.comms import CommsManager
from repro.core.config import TiamatConfig
from repro.core.evaltask import EvalTask
from repro.core.handles import SpaceHandle
from repro.core.ops import Operation
from repro.core.reliability import ReliableChannel
from repro.core.routing import RandomRelayRouter, Router, UnavailablePolicy
from repro.core.serving import QueryServer
from repro.errors import LeaseError, OperationAbandonedError
from repro.leasing import (
    LeaseManager,
    LeaseRequester,
    LeaseState,
    OperationKind,
    SimpleLeaseRequester,
)
from repro.leasing.policy import GrantPolicy
from repro.net.message import Message
from repro.net.network import Network
from repro.sim.events import Event
from repro.sim.kernel import Simulator
from repro.tuples import LocalTupleSpace, Pattern, Tuple
from repro.tuples.serialization import (
    decode_tuple,
    encode_tuple,
    encoded_size,
    ensure_codec_match,
)

_rids = itertools.count(1)


class TiamatInstance:
    """One node's Tiamat middleware.

    Only the identity triple ``(sim, network, name)`` is positional; every
    tunable is keyword-only.  Legacy positional calls are absorbed for one
    deprecation cycle (see :mod:`repro._compat` and ``docs/API.md``).
    """

    #: Legacy positional order of the optional parameters (pre-PR-4 API).
    _LEGACY_OPTIONALS: dict = {
        "policy": None, "config": None, "storage_capacity": None,
        "thread_capacity": None, "router": None, "space": None,
    }

    #: Per-peer cap on witnessed remote-consume entry ids (oldest evicted).
    #: Sized so that even a node consuming from one peer at full tilt keeps
    #: a long enough memory to cover any plausible crash/restart window.
    WITNESS_CAP = 4096

    def __init__(self, sim: Simulator, network: Network, name: str, *args,
                 policy: Optional[GrantPolicy] = None,
                 config: Optional[TiamatConfig] = None,
                 storage_capacity: Optional[int] = None,
                 thread_capacity: Optional[int] = None,
                 router: Optional[Router] = None,
                 space: Optional[LocalTupleSpace] = None) -> None:
        if args:
            merged = absorb_positional(
                "TiamatInstance", args, self._LEGACY_OPTIONALS,
                {"policy": policy, "config": config,
                 "storage_capacity": storage_capacity,
                 "thread_capacity": thread_capacity,
                 "router": router, "space": space})
            policy = merged["policy"]
            config = merged["config"]
            storage_capacity = merged["storage_capacity"]
            thread_capacity = merged["thread_capacity"]
            router = merged["router"]
            space = merged["space"]
        self.sim = sim
        self.network = network
        self.name = name
        self.config = config if config is not None else TiamatConfig()
        # The wire codec is a property of the *network* (every attached node
        # must speak it); an instance configured for a different codec is a
        # deployment error, caught here rather than as garbled frames
        # later.  Symmetric across runtimes: the threaded registry and aio
        # cluster run the same check at construction.
        ensure_codec_match(self.config.wire_codec, network.codec,
                           transport="Network")
        self.leases = LeaseManager(sim, policy=policy,
                                   storage_capacity=storage_capacity,
                                   thread_capacity=thread_capacity)
        # "The tuple space could be replaced with any system which
        # implements the six standard Linda operations" (3.1.2): callers
        # may supply their own (pre-populated or specialised) space.
        self.space = space if space is not None else LocalTupleSpace(sim, name=name)
        self.iface = network.attach(name, self._on_message)
        self.comms = CommsManager(sim, self.iface, self.config)
        self.server = QueryServer(self)
        self.reliability = ReliableChannel(self)
        self._detached = False
        self.router = router if router is not None else RandomRelayRouter(
            sim.rng(f"router/{name}"))
        self._ops: dict[str, Operation] = {}
        self._pending_remote_outs: dict[int, Event] = {}
        self.neighbor_since: dict[str, float] = {}
        self._unsubscribe_edges = network.visibility.on_edge_change(self._on_edge)
        self.space.on_removed(self._on_tuple_removed)
        # The special space-info tuple every Tiamat space contains (2.4).
        self.space.out(self.handle().to_tuple())
        # Anti-entropy witness state: for each peer, which of *that peer's*
        # entry ids this instance destructively consumed (recorded at every
        # CLAIM_ACCEPT send).  A durably-recovering peer asks for this set
        # so torn removal records cannot resurrect consumed tuples.
        self._consume_witness: dict[str, dict[int, None]] = {}
        # Rejoin-in-progress state (populated by recover_from).
        self._rejoin_map: dict[int, int] = {}
        self._rejoin_pending: set[str] = set()
        self._rejoin_sid: Optional[int] = None
        self._rejoin_timer = None
        # statistics
        self.ops_started = 0
        self.ops_satisfied_local = 0
        self.ops_satisfied_remote = 0
        self.ops_unsatisfied = 0
        self.relays_forwarded = 0
        self.relays_dropped = 0
        self.recoveries = 0
        self.tuples_restored = 0
        self.tuples_reclaimed = 0
        self.ghosts_purged = 0
        self.rejoin_dropped = 0
        self.sync_requests_sent = 0
        self.sync_responses_sent = 0
        self.rejoins_completed = 0
        self._recovery_observed = False
        # The opt-in sharded + replicated fabric (docs/PROTOCOL.md
        # section 11).  Imported lazily: with fabric=None (the default)
        # no fabric module loads and behaviour is bit-identical to the
        # union-scan seed.
        self.fabric = None
        if self.config.fabric is not None:
            from repro.fabric.manager import FabricManager

            self.fabric = FabricManager(self)
        sim.obs.observe_instance(self)
        # The node's black box: a preallocated ring of recent protocol
        # activity (repro.obs.flight), appended to directly from the hot
        # paths below and in serving/reliability.
        self.flight_ring = sim.obs.flight.ring(name)
        self._telemetry = None
        if self.config.telemetry_enabled:
            from repro.obs.telemetry import TelemetryPublisher

            self._telemetry = TelemetryPublisher(self).start()

    # ==================================================================
    # Application API: the six operations on the logical space
    # ==================================================================
    def out(self, tup: Tuple, requester: Optional[LeaseRequester] = None):
        """Deposit a tuple in the logical space under a negotiated lease.

        Returns the stored entry.  Raises a lease error (and stores
        nothing) when the lease manager refuses or the requester declines
        the offer — "if a lease is refused, no further work is carried out
        on the operation".

        With the fabric enabled, a tuple whose shard belongs to another
        instance is routed there (``FABRIC_OUT``) and ``None`` is
        returned: the owner negotiates its own lease for the deposit,
        exactly as with a handle-directed ``out``.
        """
        if self.fabric is not None and self.fabric.route_out(tup):
            return None
        return self._deposit_local(tup, requester=requester)

    def _deposit_local(self, tup: Tuple,
                       requester: Optional[LeaseRequester] = None):
        """Deposit into *this* space, bypassing fabric routing.

        Used by every directed deposit (handle-directed ``out``,
        ``out_back`` fallbacks, inbound ``REMOTE_OUT``/``FABRIC_OUT``):
        re-routing a directed deposit could loop under shard-map skew, and
        section 2.4's semantics pin the destination anyway.  A misplaced
        deposit converges via the fabric's rebalance migration.
        """
        size = encoded_size(tup)
        lease = self.leases.negotiate(self._requester(OperationKind.OUT, requester),
                                      OperationKind.OUT, storage_needed=size)
        entry = self.space.out(tup, expires_at=lease.expires_at,
                               meta={"lease": lease, "owner": self.name})
        lease.on_end(lambda l, state: self._on_out_lease_end(entry, state))
        if self.fabric is not None:
            self.fabric.register_primary(entry)
        return entry

    def eval(self, fn: Callable[..., Tuple], *args,
             compute_time: float = 0.0,
             requester: Optional[LeaseRequester] = None) -> EvalTask:
        """Run an active tuple: compute ``fn(*args)`` then deposit its result.

        The computation is charged against the eval lease; if the lease
        ends first the computation is halted and nothing is deposited.
        """
        lease = self.leases.negotiate(self._requester(OperationKind.EVAL, requester),
                                      OperationKind.EVAL)
        return EvalTask(self, fn, args, compute_time, lease)

    def rdp(self, pattern: Pattern,
            requester: Optional[LeaseRequester] = None) -> Operation:
        """Non-blocking read over the logical space (local, then peers)."""
        return self._start_op(OperationKind.RDP, pattern, requester)

    def inp(self, pattern: Pattern,
            requester: Optional[LeaseRequester] = None) -> Operation:
        """Non-blocking take over the logical space."""
        return self._start_op(OperationKind.INP, pattern, requester)

    def rd(self, pattern: Pattern,
           requester: Optional[LeaseRequester] = None) -> Operation:
        """Blocking read: waits (within the lease) for a match anywhere."""
        return self._start_op(OperationKind.RD, pattern, requester)

    def in_(self, pattern: Pattern,
            requester: Optional[LeaseRequester] = None) -> Operation:
        """Blocking take: exactly one tuple is consumed network-wide."""
        return self._start_op(OperationKind.IN, pattern, requester)

    # ==================================================================
    # Handle-directed variants (section 2.4)
    # ==================================================================
    def handle(self) -> SpaceHandle:
        """The handle on this instance's own space."""
        return SpaceHandle(self.name, self.config.persistent_space)

    def known_handles(self) -> list[SpaceHandle]:
        """Handles this instance can name right now (itself + known peers)."""
        return [self.handle()] + [SpaceHandle(p) for p in self.comms.plan()]

    def out_at(self, handle: SpaceHandle, tup: Tuple,
               duration: Optional[float] = None) -> Event:
        """Deposit a tuple in a specific remote space.

        The remote instance negotiates its own lease for the deposit (leases
        are not transferable).  The returned event succeeds with True when
        the remote acknowledged the deposit, False when it refused or could
        not be reached within the peer timeout.
        """
        rid = next(_rids)
        event = self.sim.event()
        if handle.instance_name == self.name:
            try:
                self._deposit_local(tup)
                event.succeed(True)
            except Exception:
                event.succeed(False)
            return event
        if not self.iface.is_visible(handle.instance_name):
            event.succeed(False)
            return event
        self._pending_remote_outs[rid] = event
        # The deposit is retransmitted (if reliability is on) until acked,
        # but never past the peer-timeout that resolves the event anyway.
        self.send_reliable(handle.instance_name, {
            "kind": protocol.REMOTE_OUT,
            "rid": rid,
            "tuple": encode_tuple(tup),
            "duration": duration,
        }, deadline=self.sim.now + self.config.peer_timeout)
        self.sim.schedule(self.config.peer_timeout, self._remote_out_timeout, rid)
        return event

    def rdp_at(self, handle: SpaceHandle, pattern: Pattern,
               requester: Optional[LeaseRequester] = None) -> Operation:
        """Non-blocking read against one specific remote space."""
        return self._start_op(OperationKind.RDP, pattern, requester,
                              target=handle.instance_name)

    def inp_at(self, handle: SpaceHandle, pattern: Pattern,
               requester: Optional[LeaseRequester] = None) -> Operation:
        """Non-blocking take against one specific remote space."""
        return self._start_op(OperationKind.INP, pattern, requester,
                              target=handle.instance_name)

    def rd_at(self, handle: SpaceHandle, pattern: Pattern,
              requester: Optional[LeaseRequester] = None) -> Operation:
        """Blocking read against one specific remote space."""
        return self._start_op(OperationKind.RD, pattern, requester,
                              target=handle.instance_name)

    def in_at(self, handle: SpaceHandle, pattern: Pattern,
              requester: Optional[LeaseRequester] = None) -> Operation:
        """Blocking take against one specific remote space."""
        return self._start_op(OperationKind.IN, pattern, requester,
                              target=handle.instance_name)

    # ==================================================================
    # Reply-to-origin out (section 2.4)
    # ==================================================================
    def out_back(self, source: str, tup: Tuple,
                 policy: UnavailablePolicy = UnavailablePolicy.LOCAL,
                 duration: Optional[float] = None) -> str:
        """Deposit ``tup`` at the instance a prior result came from.

        ``source`` is the :attr:`Operation.source` of the earlier ``in``/
        ``rd``.  When the destination is not visible, ``policy`` decides:
        fall back to the local space, hand the tuple to a relay, or abandon
        (raising :class:`OperationAbandonedError`).  Returns how the tuple
        left this instance: ``"remote"``, ``"local"``, or ``"routed"``.
        """
        if source == self.name:
            self._deposit_local(tup)
            return "local"
        if self.iface.is_visible(source):
            self.send_reliable(source, {
                "kind": protocol.REMOTE_OUT,
                "rid": next(_rids),
                "tuple": encode_tuple(tup),
                "duration": duration,
            }, deadline=self.sim.now + self.config.peer_timeout)
            return "remote"
        if policy is UnavailablePolicy.LOCAL:
            self._deposit_local(tup)
            return "local"
        if policy is UnavailablePolicy.ABANDON:
            raise OperationAbandonedError(
                f"destination {source!r} unavailable and policy is abandon")
        relay = self.router.choose_relay(self, source, exclude={self.name})
        if relay is None:
            self._deposit_local(tup)
            return "local"
        self.send(relay, {
            "kind": protocol.RELAY_OUT,
            "dst": source,
            "tuple": encode_tuple(tup),
            "duration": duration,
            "ttl": self.config.relay_ttl,
            "visited": [self.name],
        })
        return "routed"

    # ==================================================================
    # Internals: operation plumbing
    # ==================================================================
    def _start_op(self, kind: OperationKind, pattern: Pattern,
                  requester: Optional[LeaseRequester],
                  target: Optional[str] = None) -> Operation:
        tracer = self.sim.obs.tracer
        try:
            lease = self.leases.negotiate(self._requester(kind, requester), kind)
        except LeaseError:
            if tracer is not None:
                tracer.lease_event(None, self.name, "refused", op=kind.value)
            self.flight_ring.append(self.sim.now, "lease_refused", None,
                                    kind.value)
            raise
        op = Operation(self, kind, pattern, lease)
        if target is not None:
            op.target = target
        self._ops[op.op_id] = op
        self.ops_started += 1
        if tracer is not None:
            tracer.op_started(op.op_id, self.name, kind.value,
                              target=target,
                              lease_expires=lease.expires_at)
        self.flight_ring.append(self.sim.now, "op_start", op.op_id,
                                kind.value, target)
        op.start()
        return op

    def _requester(self, kind: OperationKind,
                   requester: Optional[LeaseRequester]) -> LeaseRequester:
        if requester is not None:
            return requester
        return SimpleLeaseRequester(self.config.default_terms(kind))

    def _operation_finished(self, op: Operation) -> None:
        if op.result is None:
            self.ops_unsatisfied += 1
        elif op.source == self.name:
            self.ops_satisfied_local += 1
        else:
            self.ops_satisfied_remote += 1
        # Keep the record around briefly so late offers get clean rejects.
        linger = self.config.claim_timeout + self.config.peer_timeout
        self.sim.schedule(linger, self._ops.pop, op.op_id, None)

    def _on_out_lease_end(self, entry, state: LeaseState) -> None:
        if state is LeaseState.REVOKED and entry.visible:
            # Last-resort reclamation: the tuple goes with the lease.
            self.space.store.remove(entry.entry_id)
            self.space._notify_removed(entry, "expired")

    def _on_tuple_removed(self, entry, reason: str) -> None:
        lease = entry.meta.get("lease")
        # A migrated-away entry frees its funding lease just like a
        # consumed one: the tuple now lives (and is leased) elsewhere.
        if (lease is not None and lease.active
                and reason in ("consumed", "migrated")):
            lease.release()

    def deposit_eval_result(self, result: Tuple, lease) -> None:
        """Deposit an eval computation's resultant tuple (same lease)."""
        entry = self.space.out(result, expires_at=lease.expires_at,
                               meta={"lease": lease, "owner": self.name})
        lease.on_end(lambda l, state: self._on_out_lease_end(entry, state))

    # ==================================================================
    # Internals: network plumbing
    # ==================================================================
    def send(self, peer: str, payload: dict) -> bool:
        """Unicast a protocol frame; False if the peer was not visible.

        With ``config.ack_piggyback`` on, any reliability acks queued for
        ``peer`` are drained onto this frame as a ``"racks"`` list (the
        payload is copied, never mutated — retransmission state must keep
        its original payload).  Dedicated ``REL_ACK`` frames never take
        riders; they *are* the fallback flush.
        """
        if self._detached:
            return False  # a crashed/shut-down instance sends nothing
        if (self.config.ack_piggyback
                and payload.get("kind") != protocol.REL_ACK):
            racks = self.reliability.take_piggyback(peer)
            if racks is not None:
                payload = {**payload, "racks": racks}
        if (self.fabric is not None
                and payload.get("kind") not in (protocol.REL_ACK,
                                                protocol.FABRIC_MAP)):
            # Shard-map digest piggyback: any ordinary frame doubles as an
            # anti-entropy probe, so skewed maps reconcile without waiting
            # for the next gossip heartbeat.
            payload = {**payload, "fmd": self.fabric.digest()}
        return self.iface.unicast(peer, payload)

    def send_reliable(self, peer: str, payload: dict,
                      deadline: Optional[float] = None) -> bool:
        """Send a critical frame through the ack/retransmit sublayer.

        ``deadline`` (absolute virtual time, normally the funding lease's
        expiry) bounds retransmission effort; with
        ``config.reliability_enabled`` off this degrades to a plain
        best-effort :meth:`send` (the paper's prototype behaviour).
        """
        if not self.config.reliability_enabled:
            return self.send(peer, payload)
        return self.reliability.send(peer, payload, deadline)

    def _on_message(self, msg: Message) -> None:
        kind = msg.kind
        payload = msg.payload
        src = msg.src
        if kind == protocol.REL_ACK:
            self.reliability.on_ack(src, payload)
            return
        if "racks" in payload:
            # Piggybacked acks ride data frames; process them before the
            # frame itself (even a duplicate frame carries valid acks).
            self.reliability.on_piggyback(src, payload["racks"])
        if ("rseq" in payload and self.config.reliability_enabled
                and not self.reliability.on_receive(src, payload)):
            return  # duplicate of an already-dispatched reliable frame
        if self.fabric is not None and "fmd" in payload:
            self.fabric.on_digest(src, payload["fmd"])
        if kind == protocol.DISCOVER:
            self.comms.note_alive(src)
            self.send(src, {"kind": protocol.DISCOVER_ACK, "did": payload["did"]})
        elif kind == protocol.DISCOVER_ACK:
            self.comms.on_discover_ack(src, payload["did"])
        elif kind == protocol.QUERY:
            self.comms.note_alive(src)
            self.server.handle_query(src, payload)
        elif kind in (protocol.QUERY_REPLY, protocol.QUERY_REFUSED):
            op = self._ops.get(payload["op_id"])
            if op is not None:
                op.deliver_reply(src, payload)
            elif payload.get("found") and payload.get("entry_id") is not None:
                # The operation is gone; put the held tuple back.
                self.send_reliable(
                    src, {"kind": protocol.CLAIM_REJECT,
                          "op_id": payload["op_id"],
                          "entry_id": payload["entry_id"]},
                    deadline=self.sim.now + self.config.claim_timeout)
        elif kind == protocol.CANCEL:
            self.server.handle_cancel(src, payload)
        elif kind == protocol.CLAIM_ACCEPT:
            self.server.handle_claim_accept(src, payload)
        elif kind == protocol.CLAIM_REJECT:
            self.server.handle_claim_reject(src, payload)
        elif kind == protocol.REMOTE_OUT:
            self._handle_remote_out(src, payload)
        elif kind == protocol.REMOTE_OUT_ACK:
            event = self._pending_remote_outs.pop(payload["rid"], None)
            if event is not None and not event.triggered:
                event.succeed(payload["ok"])
        elif kind == protocol.RELAY_OUT:
            self._handle_relay_out(src, payload)
        elif kind == protocol.SYNC_REQUEST:
            self._handle_sync_request(src, payload)
        elif kind == protocol.SYNC_RESPONSE:
            self._handle_sync_response(src, payload)
        elif kind in protocol.FABRIC_KINDS:
            if self.fabric is not None:
                self.comms.note_alive(src)
                self.fabric.handle(kind, src, payload)

    def _handle_remote_out(self, src: str, payload: dict) -> None:
        tup = decode_tuple(payload["tuple"])
        duration = payload.get("duration")
        requester = (SimpleLeaseRequester(self.config.default_terms(OperationKind.OUT))
                     if duration is None
                     else SimpleLeaseRequester(
                         self.config.default_terms(OperationKind.OUT).capped(
                             duration=duration)))
        try:
            self._deposit_local(tup, requester=requester)
            ok = True
        except Exception:
            ok = False
        # The ack is itself reliable: if it is lost, the depositor would
        # otherwise retransmit REMOTE_OUT, be dedup-swallowed here, and
        # time out believing the deposit failed.
        self.send_reliable(src, {"kind": protocol.REMOTE_OUT_ACK,
                                 "rid": payload["rid"], "ok": ok},
                           deadline=self.sim.now + self.config.peer_timeout)

    def _handle_relay_out(self, src: str, payload: dict) -> None:
        dst = payload["dst"]
        if self.iface.is_visible(dst):
            self.relays_forwarded += 1
            self.send_reliable(dst, {"kind": protocol.REMOTE_OUT,
                                     "rid": next(_rids),
                                     "tuple": payload["tuple"],
                                     "duration": payload.get("duration")},
                               deadline=self.sim.now + self.config.peer_timeout)
            return
        ttl = payload.get("ttl", 0)
        visited = set(payload.get("visited", []))
        visited.add(self.name)
        if ttl <= 0:
            self.relays_dropped += 1
            return
        relay = self.router.choose_relay(self, dst, exclude=visited)
        if relay is None:
            self.relays_dropped += 1
            return
        self.relays_forwarded += 1
        self.send(relay, {"kind": protocol.RELAY_OUT, "dst": dst,
                          "tuple": payload["tuple"],
                          "duration": payload.get("duration"),
                          "ttl": ttl - 1,
                          "visited": sorted(visited)})

    def _remote_out_timeout(self, rid: int) -> None:
        event = self._pending_remote_outs.pop(rid, None)
        if event is not None and not event.triggered:
            event.succeed(False)

    def _on_edge(self, a: str, b: str, visible: bool) -> None:
        if self.name not in (a, b):
            return
        peer = b if a == self.name else a
        if visible:
            self.neighbor_since[peer] = self.sim.now
        else:
            self.neighbor_since.pop(peer, None)

    # ==================================================================
    # Persistence (section 2.4: the advertised persistence mechanism)
    # ==================================================================
    def snapshot_space(self) -> dict:
        """Snapshot the local space (visible tuples + remaining leases)."""
        from repro.tuples.persistence import snapshot_space

        return snapshot_space(self.space)

    def restore_space(self, snapshot: dict) -> int:
        """Restore a snapshot into the local space; returns the count.

        Restored tuples carry their remaining lease time but are not
        re-attached to lease-manager accounting (the leases that granted
        them died with the previous incarnation); their expiry is enforced
        by the space itself.
        """
        from repro.tuples.persistence import restore_space

        return restore_space(self.space, snapshot)

    # ==================================================================
    # Durable recovery + anti-entropy rejoin (docs/PROTOCOL.md section 10)
    # ==================================================================
    def note_remote_consume(self, peer: str, entry_id: int) -> None:
        """Witness a destructive consume of ``peer``'s entry ``entry_id``.

        Called at every CLAIM_ACCEPT send; if ``peer`` later crashes and
        durably recovers, its SYNC_REQUEST collects these so tuples whose
        removal record was torn off its log are purged, not resurrected.
        """
        witnessed = self._consume_witness.setdefault(peer, {})
        witnessed[entry_id] = None
        while len(witnessed) > self.WITNESS_CAP:
            del witnessed[next(iter(witnessed))]

    def recover_from(self, backend, downtime: float = 0.0,
                     charge_downtime: bool = True, sync: bool = True,
                     sync_timeout: Optional[float] = None):
        """Repopulate the local space from a durable storage backend.

        Replays ``backend``'s surviving entries into the space, lease-aware:
        with ``charge_downtime`` (the default) expiry deadlines stay
        absolute, so leases kept burning while the node was down and any
        that ran out are reclaimed instead of restored; with it off, each
        lease's remaining time *as of the crash* (``downtime`` seconds ago)
        is re-anchored to the current clock.  Entry ids are bumped past the
        backend's high-water mark first, so ids never recur across
        incarnations (see :mod:`repro.tuples.storage.base`).

        With ``sync`` (the default), restored entries enter *quarantined*
        (held, invisible) and an anti-entropy rejoin asks every visible
        peer which entry ids it consumed during the downtime; witnessed
        ghosts are purged and the survivors released once every peer
        answers.  If ``sync_timeout`` (default ``2 * config.peer_timeout``)
        closes the window with peers unheard, still-quarantined tuples are
        **dropped**, not released — a torn removal record must never
        resurrect a consumed tuple, so unverifiable entries lose.  Returns
        a :class:`~repro.tuples.storage.base.RecoveryStats`.
        """
        from repro.tuples.storage.base import RecoveryStats

        replayed_before = backend.records_replayed
        torn_before = backend.torn_truncations
        state = backend.recover()
        now = self.sim.now
        self.space.store.bump_ids(state.high_water)
        restored = 0
        reclaimed = 0
        durable_map: dict[int, int] = {}
        for durable_id, tup, expires_at in state.entries:
            if expires_at is None:
                exp = None
            elif charge_downtime:
                exp = expires_at
            else:
                exp = now + max(0.0, expires_at - (now - downtime))
            if exp is not None and exp <= now:
                reclaimed += 1
                continue
            # Restored under its original id: durable id == store id ==
            # wire id in every incarnation, so peer witness records (and
            # the WAL's own history) keep naming the same tuple forever.
            entry = self.space.restore_entry(
                tup, expires_at=exp, meta={"durable_id": durable_id},
                quarantine=sync, entry_id=durable_id)
            restored += 1
            if entry.entry_id:
                durable_map[durable_id] = entry.entry_id
        backend.rebind(self.space)
        self.recoveries += 1
        self.tuples_restored += restored
        self.tuples_reclaimed += reclaimed
        if not self._recovery_observed:
            self._recovery_observed = True
            self.sim.obs.observe_recovery(self)
        self.flight_ring.append(
            now, "recover", None, None, None,
            f"restored={restored} reclaimed={reclaimed}")
        from repro.obs.flight import dump_to_env_dir

        dump_to_env_dir(self.sim.obs.flight, f"recover-{self.name}",
                        detail={"node": self.name, "restored": restored,
                                "reclaimed": reclaimed, "downtime": downtime})
        if sync:
            timeout = (sync_timeout if sync_timeout is not None
                       else 2 * self.config.peer_timeout)
            self._begin_rejoin(durable_map, timeout)
        return RecoveryStats(
            restored=restored, reclaimed=reclaimed,
            replayed=backend.records_replayed - replayed_before,
            torn_truncations=backend.torn_truncations - torn_before)

    def _begin_rejoin(self, durable_map: dict, timeout: float) -> None:
        peers = sorted(self.network.visibility.neighbors(self.name))
        self._rejoin_map = dict(durable_map)
        self._rejoin_pending = set(peers)
        if not peers or not durable_map:
            self._finish_rejoin()
            return
        sid = next(_rids)
        self._rejoin_sid = sid
        for peer in peers:
            self.sync_requests_sent += 1
            self.send_reliable(peer, {"kind": protocol.SYNC_REQUEST,
                                      "sid": sid},
                               deadline=self.sim.now + timeout)
        self._rejoin_timer = self.sim.schedule(timeout, self._rejoin_timeout)

    def _handle_sync_request(self, src: str, payload: dict) -> None:
        self.comms.note_alive(src)
        # Normally a rejoining node asks about its *own* entries; the
        # fabric's promotion path instead asks about a dead third party's
        # (payload["owner"]) before releasing its quarantined replicas.
        owner = payload.get("owner", src)
        witnessed = self._consume_witness.get(owner, {})
        self.sync_responses_sent += 1
        self.send_reliable(src, {"kind": protocol.SYNC_RESPONSE,
                                 "sid": payload["sid"],
                                 "consumed": sorted(witnessed)},
                           deadline=self.sim.now + self.config.peer_timeout)

    def _handle_sync_response(self, src: str, payload: dict) -> None:
        sid = payload.get("sid")
        if isinstance(sid, int) and sid < 0:
            # Negative sids namespace the fabric's promotion syncs away
            # from rejoin sids (which come from the positive _rids stream).
            if self.fabric is not None:
                self.fabric.on_sync_response(src, payload)
            return
        if self._rejoin_sid is None or sid != self._rejoin_sid:
            return
        for durable_id in payload.get("consumed", ()):
            entry_id = self._rejoin_map.pop(durable_id, None)
            if entry_id is not None:
                self._purge_ghost(entry_id)
        self._rejoin_pending.discard(src)
        if not self._rejoin_pending:
            self._finish_rejoin()

    def _purge_ghost(self, entry_id: int) -> None:
        entry = self.space.store.get(entry_id)
        if entry is None or entry.removed:
            return
        self.space.store.remove(entry_id)
        self.ghosts_purged += 1
        # A reconciliation purge is not a consume: no space.consume probe,
        # so the exactly-once oracle keeps seeing one consume per deposit.
        self.space._notify_removed(entry, "reconciled")

    def _rejoin_timeout(self) -> None:
        # The sync window closed with peers unheard: a still-quarantined
        # tuple might be a ghost those peers consumed, so drop rather than
        # risk a second destructive take.  Safety over availability — the
        # peers that did answer already had their witnessed ids purged.
        self._rejoin_timer = None
        self._finish_rejoin(release=False)

    def _finish_rejoin(self, release: bool = True) -> None:
        """End the rejoin: release survivors, or drop them unverified."""
        if self._rejoin_timer is not None:
            self._rejoin_timer.cancel()
            self._rejoin_timer = None
        self._rejoin_sid = None
        self._rejoin_pending = set()
        remaining = sorted(self._rejoin_map.values())
        self._rejoin_map = {}
        for entry_id in remaining:
            entry = self.space.store.get(entry_id)
            if entry is None or not entry.held:
                continue
            if release:
                self.space.release(entry_id)
            else:
                self.space.store.remove(entry_id)
                self.rejoin_dropped += 1
                self.space._notify_removed(entry, "reconciled")
        self.rejoins_completed += 1

    # ==================================================================
    def shutdown(self) -> None:
        """Detach from the network (the local space survives in memory).

        Shutdown is abrupt, like a power cut: no goodbye frames are sent
        (``send`` is suppressed first), retransmission timers are
        cancelled, every remote serving is closed (held entries released,
        leases returned, worker threads freed), and this instance's own
        open operations are finalized unsatisfied so no timer or waiter
        outlives the instance.
        """
        if self._detached:
            return
        self._detached = True
        if self.fabric is not None:
            self.fabric.stop()
        if self._telemetry is not None:
            self._telemetry.stop()
        if self._rejoin_timer is not None:
            self._rejoin_timer.cancel()
            self._rejoin_timer = None
        self._rejoin_sid = None
        self._rejoin_map = {}
        self._rejoin_pending = set()
        self.reliability.shutdown()
        self.server.close_all()
        for op in list(self._ops.values()):
            if not op.done:
                op.cancel()
        self._unsubscribe_edges()
        self.network.detach(self.name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TiamatInstance {self.name} tuples={self.space.count()}>"
