"""Exception hierarchy shared by every subsystem of the reproduction.

The paper's model distinguishes three broad failure classes that surface to
applications: lease negotiation failures (the lease manager is the first
point of contact for every operation, and a refused lease aborts the
operation before any other work happens), operation failures (an operation's
lease expired before a match was found, or a remote destination is
unreachable), and protocol/usage errors (malformed tuples or patterns).
Each class gets its own exception subtree so callers can catch precisely.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


class TupleError(ReproError):
    """Base class for tuple/pattern construction and matching errors."""


class MalformedTupleError(TupleError):
    """A tuple was constructed with fields the codec cannot represent."""


class MalformedPatternError(TupleError):
    """A pattern (antituple) was constructed with an invalid field spec."""


class SerializationError(TupleError):
    """A tuple or pattern could not be encoded or decoded for the wire."""


class StorageError(TupleError):
    """A durable storage backend was misconfigured or its data unusable."""


class CodecMismatchError(TupleError, ValueError):
    """A node's ``config.wire_codec`` disagrees with its transport's codec.

    Raised at construction time by every runtime (sim network, threaded
    registry, aio cluster) through one shared check
    (:func:`repro.tuples.serialization.ensure_codec_match`), so a
    deployment error surfaces as the same exception everywhere instead of
    as garbled frames later.  Subclasses :class:`ValueError` for backward
    compatibility with callers that caught the old inline check.
    """


class LeaseError(ReproError):
    """Base class for leasing-subsystem errors."""


class LeaseRefusedError(LeaseError):
    """The lease manager refused to grant any lease for an operation.

    Per the model (section 2.5), when a lease is refused no further work is
    carried out on the operation.
    """


class LeaseRejectedByRequesterError(LeaseError):
    """The application's lease requester declined the offered lease.

    Per the implementation description (section 3.1.1), if the lease
    requester refuses the manager's offer, the operation fails.
    """


class LeaseExpiredError(LeaseError):
    """An operation's lease expired before the operation could complete."""


class LeaseRevokedError(LeaseError):
    """A granted lease was revoked by the instance (last-resort behaviour)."""


class NetworkError(ReproError):
    """Base class for simulated-network errors."""


class NotVisibleError(NetworkError):
    """A unicast was attempted to a node that is not currently visible."""


class UnknownNodeError(NetworkError):
    """An address does not name a node attached to this network."""


class OperationError(ReproError):
    """Base class for tuple-space operation failures."""


class OperationAbandonedError(OperationError):
    """A routed operation was abandoned under the configured policy.

    Raised by the ``out``/``eval`` reply-to-origin variants when the
    destination instance is unavailable and the active routing policy says
    to abandon rather than route or fall back to the local space.
    """


class RemoteSpaceUnavailableError(OperationError):
    """A handle-directed operation could not reach the named remote space."""


class SimulationError(ReproError):
    """Base class for discrete-event kernel errors."""


class StopSimulation(SimulationError):
    """Raised internally to halt :meth:`Simulator.run` early."""


class ProcessInterrupt(SimulationError):
    """Thrown into a simulation process by :meth:`Process.interrupt`.

    ``cause`` carries the value passed to ``interrupt`` so the interrupted
    process can decide how to react.
    """

    def __init__(self, cause: object = None) -> None:
        super().__init__(cause)
        self.cause = cause
