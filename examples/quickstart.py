#!/usr/bin/env python3
"""Quickstart: two Tiamat instances coordinating through the logical space.

Run with::

    python examples/quickstart.py

Walks through the core model in five short acts:

1. an isolated instance works against its own local space;
2. two instances become visible and their logical spaces merge;
3. a blocking ``in`` consumes a tuple exactly once across the network;
4. every operation is leased — an expired out-lease reclaims the tuple;
5. ``eval`` runs an active tuple whose result appears when ready.
"""

from repro import (
    LeaseTerms,
    Network,
    Pattern,
    SimpleLeaseRequester,
    Simulator,
    TiamatInstance,
    Tuple,
)


def main() -> None:
    sim = Simulator(seed=2026)
    net = Network(sim)
    alice = TiamatInstance(sim, net, "alice")
    bob = TiamatInstance(sim, net, "bob")

    # -- Act 1: isolation -------------------------------------------------
    alice.out(Tuple("note", "hello from alice"))
    op = bob.rdp(Pattern("note", str))
    sim.run(until=5.0)
    print(f"[t={sim.now:5.1f}] bob (isolated) sees alice's note: {op.result}")

    # -- Act 2: visibility merges the logical spaces ----------------------
    net.visibility.set_visible("alice", "bob")
    op = bob.rdp(Pattern("note", str))
    sim.run(until=10.0)
    print(f"[t={sim.now:5.1f}] bob (visible)  sees alice's note: "
          f"{op.result} from {op.source}")

    # -- Act 3: blocking take, exactly once --------------------------------
    take = bob.in_(Pattern("note", str))
    sim.run(until=15.0)
    print(f"[t={sim.now:5.1f}] bob's in() consumed the note: {take.result}")
    print(f"          alice's space now holds "
          f"{alice.space.count(Pattern('note', str))} matching tuples")

    # -- Act 4: leases are the garbage collector --------------------------
    alice.out(Tuple("ephemeral", 1),
              requester=SimpleLeaseRequester(LeaseTerms(duration=3.0)))
    print(f"[t={sim.now:5.1f}] alice deposited a tuple on a 3-second lease")
    sim.run(until=sim.now + 5.0)
    count = alice.space.count(Pattern("ephemeral", int))
    print(f"[t={sim.now:5.1f}] after lease expiry the tuple is gone "
          f"(count={count})")

    # -- Act 5: eval (active tuples) ---------------------------------------
    alice.eval(lambda a, b: Tuple("sum", a + b), 20, 22, compute_time=2.0)
    wait = bob.rd(Pattern("sum", int))
    sim.run(until=sim.now + 10.0)
    print(f"[t={sim.now:5.1f}] bob read the eval result: {wait.result}")

    print("\nNetwork totals:", net.stats.total_messages, "messages,",
          net.stats.total_bytes, "bytes")


if __name__ == "__main__":
    main()
