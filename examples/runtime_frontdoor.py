"""One workload, three substrates: the ``repro.connect`` front door.

Runs the identical producer/consumer exchange on the deterministic
simulation, on real OS threads, and on real UDP datagrams (asyncio),
switching nothing but the ``runtime=`` string — the v1.2 API redesign's
whole point.  Run with::

    PYTHONPATH=src python examples/runtime_frontdoor.py
"""

import time

import repro
from repro import Pattern, Tuple


def exchange(kind: str) -> float:
    """Produce, read, take, and eval through one runtime; return seconds."""
    start = time.perf_counter()
    with repro.connect(runtime=kind) as rt:
        producer = rt.node("producer")
        consumer = rt.node("consumer")
        rt.set_visible("producer", "consumer")

        for i in range(5):
            producer.out(Tuple("work", i, f"payload-{i}"))

        # non-destructive read leaves the tuple with the producer
        peek = consumer.rdp(Pattern("work", 0, str))
        assert peek == Tuple("work", 0, "payload-0")

        # destructive takes drain the logical space across the wire
        taken = [consumer.in_(Pattern("work", i, str), timeout=10.0)
                 for i in range(5)]
        assert [t.fields[1] for t in taken] == list(range(5))

        # eval deposits an active tuple's result; the portable way to
        # observe it is a blocking read (eval's return shape is
        # runtime-specific — see docs/API.md)
        consumer.eval(lambda: Tuple("sum", sum(range(5))))
        total = consumer.rd(Pattern("sum", int), timeout=10.0)
        assert total == Tuple("sum", 10)
    return time.perf_counter() - start


def main() -> None:
    for kind in ("sim", "threads", "aio"):
        elapsed = exchange(kind)
        print(f"{kind:>7}: same workload, same answers "
              f"({elapsed * 1000:.1f} ms wall clock)")


if __name__ == "__main__":
    main()
