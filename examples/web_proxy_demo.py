#!/usr/bin/env python3
"""The paper's web client/proxy application, end to end (section 3.2).

Run with::

    python examples/web_proxy_demo.py

Three episodes, mirroring the claims of the paper's evaluation:

* **load balancing** — a second proxy is added under load, invisibly to
  the clients;
* **failure replacement** — the original proxy dies and is replaced, with
  no client-visible perturbation;
* **disconnected operation** — a client issues a request while between
  networks; a proxy serves it after reconnection because the request
  tuple's lease is still live.
"""

from repro.apps import OriginFabric, WebScenario
from repro.net import Network
from repro.sim import Simulator


def main() -> None:
    sim = Simulator(seed=99)
    net = Network(sim)
    scenario = WebScenario(sim, net, fabric=OriginFabric(fetch_time=1.0))

    for i in range(3):
        scenario.add_client(f"client{i}")
    scenario.add_proxy("proxy0")
    scenario.connect_all()

    for name, client in scenario.clients.items():
        urls = [f"http://site/{name}/{i}" for i in range(4)]
        sim.spawn(client.browse(urls, think_time=2.0))

    # Episode 1: add a proxy under load (t=5).
    def add_proxy():
        scenario.add_proxy("proxy1")
        scenario.connect_all()
        print(f"[t={sim.now:5.1f}] proxy1 added (clients unaware)")

    sim.schedule(5.0, add_proxy)

    # Episode 2: kill proxy0 and bring in a replacement (t=12).
    def kill_and_replace():
        scenario.proxies["proxy0"].stop()
        net.visibility.set_up("proxy0", False)
        scenario.add_proxy("proxy2")
        scenario.connect_all()
        print(f"[t={sim.now:5.1f}] proxy0 failed; proxy2 replaces it")

    sim.schedule(12.0, kill_and_replace)

    sim.run(until=120.0)

    print(f"\n[t={sim.now:5.1f}] steady-state results")
    for name, client in scenario.clients.items():
        mean = (sum(client.latencies) / len(client.latencies)
                if client.latencies else float("nan"))
        print(f"  {name}: {client.satisfied}/{client.issued} satisfied, "
              f"mean latency {mean:.2f}s")
    for name, proxy in scenario.proxies.items():
        print(f"  {name}: handled {proxy.handled} requests")

    # Episode 3: disconnected operation.
    print("\n-- disconnected client episode --")
    roamer = scenario.add_client("roamer")
    # roamer is NOT connected to anyone yet: between networks.
    process = sim.spawn(roamer.fetch("http://important/page"))
    sim.run(until=sim.now + 3.0)
    print(f"[t={sim.now:5.1f}] roamer issued a request while disconnected "
          f"(answered: {process.triggered})")
    net.visibility.set_visible("roamer", "proxy2")
    sim.run(until=sim.now + 30.0)
    print(f"[t={sim.now:5.1f}] after reconnecting to proxy2: "
          f"answered={process.triggered}, body={process.value!r}")


if __name__ == "__main__":
    main()
