#!/usr/bin/env python3
"""The paper's fractal generator, restructured as a Tiamat master/worker farm.

Run with::

    python examples/fractal_farm.py

Renders the same Mandelbrot region with farms of 1, 2, and 4 workers and
prints the completion times, then re-runs a render during which the worker
pool grows and shrinks — the master never notices either change.
"""

from repro.apps import FractalMaster, FractalWorker
from repro.core import TiamatConfig, TiamatInstance
from repro.net import Network
from repro.sim import Simulator

TILES = 12
RESOLUTION = 48
MAX_ITER = 120
TIME_PER_ITERATION = 2e-4  # virtual seconds per escape-time iteration


def render(workers: int, seed: int = 5) -> tuple:
    """One complete render; returns (elapsed, checksum, per-worker tiles)."""
    sim = Simulator(seed=seed)
    net = Network(sim)
    config = TiamatConfig(propagate_mode="continuous")
    names = ["master"] + [f"worker{i}" for i in range(workers)]
    instances = {n: TiamatInstance(sim, net, n, config=config) for n in names}
    net.visibility.connect_clique(names)
    master = FractalMaster(sim, instances["master"], job="demo", tiles=TILES,
                           resolution=RESOLUTION, max_iter=MAX_ITER)
    pool = [FractalWorker(sim, instances[f"worker{i}"],
                          time_per_iteration=TIME_PER_ITERATION)
            for i in range(workers)]
    for worker in pool:
        worker.start()
    sim.spawn(master.run())
    sim.run(until=10_000.0)
    assert master.complete, "render did not finish"
    elapsed = master.finished_at - master.started_at
    return elapsed, master.checksum, [w.tiles_done for w in pool]


def main() -> None:
    print(f"Rendering {TILES} tiles at {RESOLUTION}px, max_iter={MAX_ITER}\n")
    baseline = None
    for workers in (1, 2, 4):
        elapsed, checksum, tiles = render(workers)
        if baseline is None:
            baseline = elapsed
        print(f"  {workers} worker(s): {elapsed:7.2f}s "
              f"(speedup {baseline / elapsed:4.2f}x)  "
              f"checksum={checksum}  tiles per worker={tiles}")

    print("\nElastic farm: grow to 3 workers at t=2, lose one at t=6")
    sim = Simulator(seed=6)
    net = Network(sim)
    config = TiamatConfig(propagate_mode="continuous")
    master_inst = TiamatInstance(sim, net, "master", config=config)
    w0_inst = TiamatInstance(sim, net, "worker0", config=config)
    net.visibility.connect_clique(["master", "worker0"])
    master = FractalMaster(sim, master_inst, job="elastic", tiles=TILES,
                           resolution=RESOLUTION, max_iter=MAX_ITER)
    pool = [FractalWorker(sim, w0_inst, time_per_iteration=TIME_PER_ITERATION)]
    pool[0].start()
    sim.spawn(master.run())

    def grow():
        for i in (1, 2):
            inst = TiamatInstance(sim, net, f"worker{i}", config=config)
            net.visibility.connect_clique(["master", "worker0", "worker1",
                                           "worker2"][: i + 2])
            worker = FractalWorker(sim, inst,
                                   time_per_iteration=TIME_PER_ITERATION)
            worker.start()
            pool.append(worker)
        print(f"  [t={sim.now:5.1f}] grew to 3 workers")

    def shrink():
        pool[0].stop()
        net.visibility.set_up("worker0", False)
        print(f"  [t={sim.now:5.1f}] worker0 departed")

    sim.schedule(2.0, grow)
    sim.schedule(6.0, shrink)
    sim.run(until=10_000.0)
    print(f"  [t={master.finished_at:5.1f}] render complete "
          f"(checksum={master.checksum}); tiles per worker: "
          f"{[w.tiles_done for w in pool]}")


if __name__ == "__main__":
    main()
