#!/usr/bin/env python3
"""A pervasive-campus scenario: mobile devices, fixed backbone, churn.

Run with::

    python examples/pervasive_campus.py

Eight PDAs wander a 120x120 m courtyard under random-waypoint mobility
(with battery churn) while four workstations sit at fixed corners.  Every
device runs Tiamat in continuous-propagation mode; PDAs publish sensor
readings and consume each other's readings opportunistically, and replies
whose destination has wandered away are routed through the backbone by the
SocialRouter (the paper's section 6 extension).
"""

from repro.core import SocialRouter, TiamatConfig, TiamatInstance, UnavailablePolicy
from repro.leasing import LeaseTerms, SimpleLeaseRequester
from repro.net import (
    ChurnInjector,
    Network,
    Position,
    RandomWaypointMobility,
    RangeVisibilityDriver,
    StaticPlacement,
)
from repro.tuples import Formal, Pattern, Tuple

from repro.sim import Simulator

PDAS = 8
WORKSTATIONS = 4
AREA = 120.0
RADIO_RANGE = 45.0
DURATION = 300.0


class _CombinedPlacement:
    """Mobility model merging wandering PDAs with fixed workstations."""

    def __init__(self, mobile, fixed):
        self.mobile = mobile
        self.fixed = fixed

    def nodes(self):
        return self.mobile.nodes() + self.fixed.nodes()

    def position_of(self, node):
        return self.mobile.position_of(node) or self.fixed.position_of(node)

    def advance(self, dt):
        self.mobile.advance(dt)


def main() -> None:
    sim = Simulator(seed=777)
    net = Network(sim)
    config = TiamatConfig(propagate_mode="continuous")

    pda_names = [f"pda{i}" for i in range(PDAS)]
    ws_names = [f"ws{i}" for i in range(WORKSTATIONS)]

    mobile = RandomWaypointMobility(sim.rng("mobility"), AREA, AREA,
                                    speed_min=1.0, speed_max=3.0, pause=10.0)
    for name in pda_names:
        mobile.add_node(name)
    # Workstations on a grid covering the courtyard: the well-connected,
    # fixed backbone the social router should discover and exploit.
    spots = [(30, 30), (AREA - 30, 30), (30, AREA - 30), (AREA - 30, AREA - 30)]
    fixed = StaticPlacement({name: Position(*spots[i])
                             for i, name in enumerate(ws_names)})

    driver = RangeVisibilityDriver(sim, net.visibility,
                                   _CombinedPlacement(mobile, fixed),
                                   radio_range=RADIO_RANGE, tick=1.0)

    instances = {}
    for name in pda_names + ws_names:
        instances[name] = TiamatInstance(sim, net, name, config=config,
                                         router=SocialRouter())
    driver.start()

    churn = ChurnInjector(sim, net.visibility)
    for name in pda_names:
        churn.auto_churn(name, mean_uptime=120.0, mean_downtime=20.0)

    published = [0]
    consumed = [0]
    routed = [0]

    def pda_app(name):
        inst = instances[name]
        rng = sim.rng(f"app/{name}")
        others = [p for p in pda_names if p != name]
        while sim.now < DURATION:
            yield sim.timeout(rng.uniform(5.0, 15.0))
            # Publish a reading addressed to a random peer, on a 60s lease.
            target = rng.choice(others)
            try:
                inst.out(Tuple("reading", target, name, int(sim.now)),
                         requester=SimpleLeaseRequester(LeaseTerms(duration=60.0)))
                published[0] += 1
            except Exception:
                pass
            # Try to consume a reading addressed to me (held by whoever
            # published it, wherever they are now).
            op = inst.in_(Pattern("reading", name, Formal(str), Formal(int)),
                          requester=SimpleLeaseRequester(
                              LeaseTerms(duration=10.0, max_remotes=8)))
            reading = yield op.event
            if reading is None:
                continue
            consumed[0] += 1
            if op.source and op.source != name:
                # Process the reading for a while, then acknowledge back to
                # the source — which may have wandered off by then, in which
                # case the ack is routed via the backbone.
                yield sim.timeout(rng.uniform(10.0, 20.0))
                how = inst.out_back(op.source, Tuple("ack", name, reading[2]),
                                    policy=UnavailablePolicy.ROUTE)
                if how == "routed":
                    routed[0] += 1

    for name in pda_names:
        sim.spawn(pda_app(name))

    sim.run(until=DURATION)

    print(f"campus ran for {DURATION:.0f}s with {PDAS} PDAs + "
          f"{WORKSTATIONS} fixed workstations")
    print(f"  visibility transitions: {net.visibility.transitions}")
    print(f"  churn events:           {churn.downs} down / {churn.ups} up")
    print(f"  readings published:     {published[0]}")
    print(f"  readings consumed:      {consumed[0]}")
    print(f"  acks routed via relays: {routed[0]}")
    relayed = sum(instances[w].relays_forwarded for w in ws_names)
    print(f"  relay hops carried by the fixed backbone: {relayed}")
    print(f"  network: {net.stats.total_messages} messages, "
          f"{net.stats.total_bytes} bytes")


if __name__ == "__main__":
    main()
