#!/usr/bin/env python3
"""The tuple-space kernel over real OS threads (no simulator anywhere).

Run with::

    python examples/threaded_workers.py

A master thread posts genuinely computed jobs into its node's space; four
worker threads on other nodes take jobs through their opportunistic
logical spaces, compute, and post results back.  Mid-run, one node's
visibility is cut and restored — the threads never notice beyond a pause,
because the logical space re-samples visibility on every probe.
"""

import threading
import time

from repro.runtime.node import ThreadedNodeRegistry, ThreadedTiamatNode
from repro.tuples import Formal, Pattern, Tuple

JOBS = 24


def main() -> None:
    registry = ThreadedNodeRegistry()
    master = ThreadedTiamatNode(registry, "master")
    workers = [ThreadedTiamatNode(registry, f"worker{i}") for i in range(4)]
    for worker in workers:
        registry.set_visible("master", worker.name)

    for i in range(JOBS):
        master.out(Tuple("job", i, (i + 1) * 111))

    done = threading.Event()
    counts = {w.name: 0 for w in workers}

    def work(node: ThreadedTiamatNode) -> None:
        while not done.is_set():
            job = node.in_(Pattern("job", Formal(int), Formal(int)), timeout=0.3)
            if job is None:
                continue
            _, job_id, n = job.fields
            total = sum(range(n))  # a real (small) computation
            node.out(Tuple("result", job_id, total))
            counts[node.name] += 1

    threads = [threading.Thread(target=work, args=(w,), daemon=True)
               for w in workers]
    for thread in threads:
        thread.start()

    # Flap one worker's visibility mid-run.
    time.sleep(0.05)
    registry.set_visible("master", "worker0", False)
    print("cut worker0's visibility...")
    time.sleep(0.1)
    registry.set_visible("master", "worker0", True)
    print("...and restored it")

    results = []
    for _ in range(JOBS):
        result = master.in_(Pattern("result", Formal(int), Formal(int)),
                            timeout=10.0)
        assert result is not None, "a job result never arrived"
        results.append(result)
    done.set()
    for thread in threads:
        thread.join(timeout=2.0)

    checks = all(result[2] == sum(range((result[1] + 1) * 111))
                 for result in results)
    print(f"collected {len(results)}/{JOBS} results, all correct: {checks}")
    print("jobs per worker:", dict(sorted(counts.items())))


if __name__ == "__main__":
    main()
