#!/usr/bin/env python3
"""Ad-hoc service discovery with soft-state adverts (leases as heartbeats).

Run with::

    python examples/service_discovery.py

Providers advertise their services as leased tuples and refresh the advert
while alive; clients discover and invoke whatever is around, with no
registry and no names exchanged.  When the translator device dies, its
advert expires on its own — no stale registration to clean up — and a
replacement that appears later is discovered just as anonymously.
"""

from repro.apps import ServiceClient, ServiceProvider
from repro.core import TiamatConfig, TiamatInstance
from repro.net import Network
from repro.sim import Simulator


def main() -> None:
    sim = Simulator(seed=404)
    net = Network(sim)
    config = TiamatConfig(propagate_mode="continuous")
    names = ["translator", "calculator", "laptop"]
    inst = {n: TiamatInstance(sim, net, n, config=config) for n in names}
    net.visibility.connect_clique(names)

    translator = ServiceProvider(sim, inst["translator"], "translate",
                                 lambda s: s.replace("hello", "bonjour"),
                                 advert_lease=8.0, refresh_every=3.0)
    translator.start()
    ServiceProvider(sim, inst["calculator"], "sum",
                    lambda s: str(sum(int(x) for x in s.split()))).start()

    client = ServiceClient(sim, inst["laptop"])

    def session():
        types = yield from client.available_types(["translate", "sum", "print"])
        print(f"[t={sim.now:5.1f}] services in range: {types}")
        result = yield from client.call("translate", "hello world")
        print(f"[t={sim.now:5.1f}] translate('hello world') -> {result!r}")
        result = yield from client.call("sum", "3 4 5")
        print(f"[t={sim.now:5.1f}] sum('3 4 5')             -> {result!r}")

        # The translator device dies; its advert expires on its own.
        translator.stop()
        net.visibility.set_up("translator", False)
        print(f"[t={sim.now:5.1f}] translator died (no deregistration sent)")
        yield sim.timeout(15.0)
        types = yield from client.available_types(["translate", "sum"])
        print(f"[t={sim.now:5.1f}] services in range now: {types}")

        # A replacement translator wanders in.
        replacement = TiamatInstance(sim, net, "translator2", config=config)
        net.visibility.connect_clique(["translator2", "calculator", "laptop"])
        ServiceProvider(sim, replacement, "translate",
                        lambda s: s.replace("hello", "hallo")).start()
        yield sim.timeout(2.0)
        result = yield from client.call("translate", "hello again")
        print(f"[t={sim.now:5.1f}] translate('hello again')  -> {result!r} "
              f"(new provider, same client code)")

    sim.spawn(session())
    sim.run(until=300.0)
    print(f"\ncalls completed: {client.completed}/{client.calls}")


if __name__ == "__main__":
    main()
