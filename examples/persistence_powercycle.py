#!/usr/bin/env python3
"""Space persistence across a device power cycle (section 2.4).

Run with::

    python examples/persistence_powercycle.py

The space-info tuple advertises "whether the local space provides a
persistence mechanism or not"; here a PDA running low on battery snapshots
its space to disk, powers down, and a later incarnation restores it —
with every tuple's *remaining* lease time intact, so nothing outlives the
lifetime its depositor negotiated.
"""

import tempfile

from repro import (
    LeaseTerms,
    Network,
    Pattern,
    SimpleLeaseRequester,
    Simulator,
    TiamatConfig,
    TiamatInstance,
    Tuple,
)
from repro.tuples import load_space, save_space


def main() -> None:
    sim = Simulator(seed=505)
    net = Network(sim)
    pda = TiamatInstance(sim, net, "pda",
                         config=TiamatConfig(persistent_space=True))

    pda.out(Tuple("note", "buy milk"),
            requester=SimpleLeaseRequester(LeaseTerms(duration=120.0)))
    pda.out(Tuple("note", "call home"),
            requester=SimpleLeaseRequester(LeaseTerms(duration=20.0)))
    sim.run(until=10.0)
    print(f"[t={sim.now:5.1f}] pda holds "
          f"{pda.space.count(Pattern('note', str))} notes "
          f"(leases: 110s and 10s remaining)")

    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as handle:
        path = handle.name
    saved = save_space(pda.space, path)
    pda.shutdown()
    print(f"[t={sim.now:5.1f}] battery died; {saved} tuples snapshotted "
          f"to {path}")

    sim.run(until=40.0)  # thirty seconds pass while the device charges

    reborn = TiamatInstance(sim, net, "pda-reborn",
                            config=TiamatConfig(persistent_space=True))
    restored = load_space(reborn.space, path)
    print(f"[t={sim.now:5.1f}] rebooted; {restored} tuples restored")
    # Remaining lease time was preserved relative to the restoring clock:
    # 'call home' has 10 more seconds to live, 'buy milk' has 110.
    sim.run(until=55.0)
    milk = reborn.space.rdp(Pattern("note", "buy milk"))
    call = reborn.space.rdp(Pattern("note", "call home"))
    print(f"[t={sim.now:5.1f}] fifteen seconds after restore:")
    print(f"          'buy milk'  (110s left at snapshot): "
          f"{'still here' if milk else 'gone'}")
    print(f"          'call home' (10s left at snapshot):  "
          f"{'still here' if call else 'expired'}")

    sim.run(until=200.0)
    left = reborn.space.count(Pattern("note", str))
    print(f"[t={sim.now:5.1f}] all leases elapsed; notes remaining: {left}")


if __name__ == "__main__":
    main()
